package core

import (
	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/simtime"
)

// Range invalidation (an extension beyond the paper).
//
// CLaMPI's modes assume windows are read-only while caching is active;
// a put issued *by the caching process itself* through the same window
// would silently leave stale entries behind. The paper leaves write
// consistency to the user. As a safety extension, Put routes writes
// through the cache layer and invalidates the (origin-local) entries
// overlapping the written range first, so a process never reads its own
// stale writes back. Remote writers are still the user's responsibility,
// exactly as in the paper — no coherence traffic is ever generated.

// InvalidateRange drops every cached entry of target that overlaps the
// byte range [disp, disp+size). The index has no spatial structure (the
// paper's design trades range queries for O(1) lookups), so this is a
// linear scan over the cached entries — acceptable because writes to
// cached windows are rare by assumption. Returns the number of entries
// dropped.
func (c *Cache) InvalidateRange(target, disp, size int) int {
	if size <= 0 {
		return 0
	}
	var victims []*entry
	c.charge(simtime.Duration(c.idx.Len())*CostPerScanSlot, func() {
		c.idx.Walk(func(k cuckoo.Key, e *entry) bool {
			if k.Target == target && k.Disp < disp+size && disp < k.Disp+e.payload {
				victims = append(victims, e)
			}
			return true
		})
	})
	for _, e := range victims {
		if e.state == statePending {
			// Same-epoch waiters keep their data (it is complete in
			// the in-flight source buffer; see invalidate()).
			c.charge(copyCost(waiterBytes(e)), func() {
				for _, w := range e.waiters {
					copy(w.dst, e.src[:w.size])
				}
			})
			clearWaiters(e)
		}
		c.charge(CostLookup+CostFree, func() {
			c.idx.Delete(e.key)
			e.state = stateEvicted
			c.store.FreeRegion(e.region)
		})
		c.retire(e)
	}
	return len(victims)
}

// Put routes a write through the cache layer (notify.go), keeping the
// origin's own cache coherent with its writes: an exactly-covering
// cached entry is patched in place, anything else overlapping the span
// is invalidated. Write-through by default; Params.WriteBack stages
// dense spans for a coalesced flush at epoch closure.
func (c *Cache) Put(src []byte, dtype datatype.Datatype, count, target, disp int) error {
	return c.write(src, dtype, count, target, disp, 0, false)
}

// Prefetch warms the cache with size bytes at target's displacement disp
// without delivering data to the application (an extension beyond the
// paper): the remote get lands in a cache-owned buffer and the entry
// becomes CACHED at the next epoch closure, so a later Get in a
// subsequent epoch is a pure local hit. A prefetch of already-cached
// data only refreshes its temporal score. Prefetches flow through the
// normal get path and are classified in the statistics like any get.
func (c *Cache) Prefetch(target, disp, size int) error {
	if size <= 0 {
		return nil
	}
	c.stats.Prefetches++
	// The destination lives in the epoch-lifetime arena: it must stay
	// intact until the closure copy-in, and carving it off the arena
	// keeps the prefetch path allocation-free in steady state.
	buf := c.stageBuf(size)
	return c.Get(buf, datatype.Byte, size, target, disp)
}
