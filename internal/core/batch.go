package core

// Vectorized gets with miss coalescing (DESIGN.md §10).
//
// Applications that request many ranges from the same target inside one
// epoch (LCC neighbor scans, N-body interaction lists, BFS frontier
// probes) pay one LogGP issue overhead o per range when the ranges are
// issued as individual gets. GetBatch serves all hits locally first,
// then sorts the remaining contiguous misses by (target, displacement),
// merges adjacent and overlapping ranges, and issues ONE remote message
// per merged range — amortizing o across the run while still inserting
// every constituent range into the cache individually under the weak-
// caching bound (at most one eviction per constituent miss).

import (
	"errors"
	"slices"

	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// GetOp describes one get of a batch (Cache.GetBatch). A nil Dtype
// selects datatype.Byte with Count = len(Dst) — the contiguous byte-range
// form the application kernels issue.
type GetOp struct {
	Dst    []byte
	Dtype  datatype.Datatype
	Count  int
	Target int
	Disp   int
}

// batchMiss is one coalescible (dense) miss of the current batch.
type batchMiss struct {
	op     int // index into the ops slice
	target int
	disp   int
	size   int
	lookup simtime.Duration // lookup cost attributed to this op
	dup    bool             // an earlier miss in this batch has the same key
}

// batchRun is one merged range: misses[from:to) coalesced into the byte
// range [lo, hi) of target, staged in stage.
type batchRun struct {
	target   int
	lo, hi   int
	from, to int
	stage    []byte
}

// GetBatch processes every op as a get_c (identical classification,
// statistics and weak-caching semantics as calling Get per op), but
// coalesces the contiguous misses into merged per-target ranges and
// issues one remote message per merged range. Destination buffers obey
// the usual epoch contract: valid only after the next completion call
// on the window. On error the batch may have been partially processed —
// ops preceding the failure were served normally.
//
// Ops with strided datatypes or empty transfers are served through the
// scalar path; they are counted in BatchOps but never coalesced.
func (c *Cache) GetBatch(ops []GetOp) error {
	if len(ops) == 0 {
		return nil
	}
	c.stats.BatchOps += int64(len(ops))
	if c.params.DisableCoalesce || len(ops) == 1 {
		for i := range ops {
			if err := c.getOp(&ops[i]); err != nil {
				return err
			}
		}
		return nil
	}

	// Pass 1: serve hits and strided misses immediately; defer dense
	// misses for coalescing.
	misses := c.bmisses[:0]
	for i := range ops {
		op := &ops[i]
		dtype, count := op.Dtype, op.Count
		if dtype == nil {
			dtype = datatype.Byte
			count = len(op.Dst)
		}
		size := datatype.TransferSize(dtype, count)
		if len(op.Dst) < size {
			return rma.ErrShortBuf
		}
		if len(c.dirty) > 0 {
			// Read-your-writes, as in Get: a batched read overlapping a
			// staged dirty span flushes the write-back buffer first.
			if err := c.flushOverlap(op.Target, op.Disp, datatype.Span(dtype, count)); err != nil {
				return err
			}
		}
		c.beginGet(size)
		key := cuckoo.Key{Target: op.Target, Disp: op.Disp}
		e, found, lookupT := c.lookup(key)
		c.last.Lookup = lookupT
		c.stats.LookupTime += lookupT
		if found && e.state != stateEvicted {
			if err := c.serveHit(e, op.Dst, dtype, count, op.Target, op.Disp, size); err != nil {
				return err
			}
			c.emitAccess(op.Target, op.Disp, size, nil)
			continue
		}
		if size == 0 || dtype.Size() != dtype.Extent() {
			// Strided or empty transfer: scalar miss path.
			if err := c.serveMiss(key, op.Dst, dtype, count, op.Target, op.Disp, size); err != nil {
				return err
			}
			c.emitAccess(op.Target, op.Disp, size, nil)
			continue
		}
		if c.l2Routed(dtype, size, op.Target) && c.l2Probe(op.Target, op.Disp, op.Dst[:size]) {
			// Far-target miss served from the node-shared tier: never
			// reaches the coalescer or the network (DESIGN.md §15).
			c.emitAccess(op.Target, op.Disp, size, nil)
			continue
		}
		misses = append(misses, batchMiss{op: i, target: op.Target, disp: op.Disp, size: size, lookup: lookupT})
	}
	if len(misses) == 0 {
		c.bmisses = misses
		return nil
	}

	// Pass 2: plan — sort by (target, disp, size desc), mark duplicate
	// keys (the largest instance admits the entry; repeats become
	// pending hits), and merge adjacent/overlapping ranges per target.
	runs := c.bruns[:0]
	rops := c.bops[:0]
	planT := c.chargeFn(func() {
		sortMisses(misses)
		for i := 0; i < len(misses); {
			run := batchRun{target: misses[i].target, lo: misses[i].disp, hi: misses[i].disp + misses[i].size, from: i}
			j := i + 1
			for ; j < len(misses); j++ {
				n := &misses[j]
				if n.target != run.target || n.disp > run.hi {
					break
				}
				// Identical keys are adjacent after the sort; the
				// first (largest) instance admits the entry.
				if n.disp == misses[j-1].disp {
					n.dup = true
				}
				if end := n.disp + n.size; end > run.hi {
					run.hi = end
				}
			}
			run.to = j
			// L2-routed runs are widened to block alignment so the whole
			// span can be published into the node-shared tier at epoch
			// closure (constituent offsets below are relative to run.lo,
			// so the widening is transparent to pass 3).
			run.lo, run.hi = c.expandRunL2(run.target, run.lo, run.hi)
			run.stage = c.stageBuf(run.hi - run.lo)
			runs = append(runs, run)
			rops = append(rops, rma.GetOp{Dst: run.stage, Target: run.target, Disp: run.lo})
			i = j
		}
	}, func() simtime.Duration {
		return simtime.Duration(len(misses)) * CostBatchPlanPerMiss
	})
	c.stats.MgmtTime += planT

	c.stats.BatchMisses += int64(len(misses))
	c.stats.BatchMessages += int64(len(rops))
	if err := c.issueRanges(rops); err != nil {
		return err
	}

	// One sampling scan serves every capacity eviction of the batch:
	// when the admissions to come exceed the free storage, fill the
	// victim reservoir now instead of paying a scan per miss.
	newBytes := 0
	fresh := 0
	for i := range misses {
		if !misses[i].dup {
			newBytes += misses[i].size
			fresh++
		}
	}
	if newBytes > c.store.FreeBytes() {
		c.fillVictimPool(fresh)
	}
	c.inBatch = true

	// Pass 3: serve every constituent from its staged merged range —
	// deliver the payload to the user buffer and admit the range into
	// the cache (weak caching, at most one eviction each).
	for r := range runs {
		run := &runs[r]
		c.stats.BytesFromNetwork += int64(run.hi - run.lo)
		if c.l2RangeRouted(run.target) && run.lo%c.l2.BlockSize() == 0 {
			// Stage the aligned span for L2 publication when the epoch
			// closes and its bytes become valid (a trailing partial
			// block — region end — publishes as a short tail).
			c.l2pend = append(c.l2pend, l2Fill{target: run.target, lo: run.lo, data: run.stage})
		}
		for _, m := range misses[run.from:run.to] {
			op := &ops[m.op]
			src := run.stage[m.disp-run.lo : m.disp-run.lo+m.size]
			c.last = Access{Lookup: m.lookup, Issued: true}
			copyT := c.copyOut(op.Dst[:m.size], src)
			c.last.Copy = copyT
			c.stats.CopyTime += copyT
			if m.dup {
				c.servePendingDup(m, src)
			} else {
				key := cuckoo.Key{Target: m.target, Disp: m.disp}
				c.finish(c.insertPending(key, src, m.size))
			}
			c.emitAccess(m.target, m.disp, m.size, nil)
		}
	}
	c.inBatch = false
	c.dropVictimPool()
	c.bmisses = misses[:0]
	c.bruns = runs[:0]
	c.bops = rops[:0]
	return nil
}

// servePendingDup classifies a batched miss whose key was admitted by an
// earlier (larger-or-equal) constituent of the same batch: the data is
// already on the wire in the same merged message, so this is a pending
// hit — except when the earlier insert failed, in which case the repeat
// gets its own weak-caching attempt with the same staged source.
func (c *Cache) servePendingDup(m batchMiss, src []byte) {
	key := cuckoo.Key{Target: m.target, Disp: m.disp}
	e, found, lookupT := c.lookup(key)
	c.last.Lookup += lookupT
	c.stats.LookupTime += lookupT
	if !found || e.state != statePending {
		c.finish(c.insertPending(key, src, m.size))
		return
	}
	e.last = c.getSeq
	c.last.Type = AccessHit
	c.stats.Hits++
	c.stats.PendingHits++
	// The duplicate-sort order (size descending) guarantees the admitted
	// payload covers this repeat in full.
	c.stats.FullHits++
	c.stats.BytesFromCache += int64(m.size)
}

// getOp serves one batch op through the scalar path.
func (c *Cache) getOp(op *GetOp) error {
	if op.Dtype == nil {
		return c.Get(op.Dst, datatype.Byte, len(op.Dst), op.Target, op.Disp)
	}
	return c.Get(op.Dst, op.Dtype, op.Count, op.Target, op.Disp)
}

// issueRanges issues one remote byte-range get per merged range — through
// the transport's native batch call when it implements rma.BatchWindow,
// per-range Window.Get otherwise. Either way exactly one LogGP issue
// overhead o is charged per merged range; the native path additionally
// amortizes the per-call host work.
//
// Under the resilience layer a transient batch failure does not abandon
// the already-delivered prefix: when the backend identifies the failing
// op (*rma.BatchError), that merged range is retried as a unit through
// netGet — with backoff, breaker and verification — and the batch call
// resumes after it. A transient failure the backend cannot attribute
// degrades the remaining ranges to the per-range resilient path.
func (c *Cache) issueRanges(rops []rma.GetOp) error {
	rem := rops
	for c.bwin != nil && len(rem) > 0 {
		err := c.bwin.GetBatch(rem)
		delivered := len(rem)
		var be *rma.BatchError
		if err != nil {
			if !c.resilient || !errors.Is(err, rma.ErrTransient) {
				return err
			}
			if !errors.As(err, &be) {
				break // unattributed transient failure: per-range fallback
			}
			delivered = be.Op // rem[:be.Op] was delivered normally
		}
		// The batch call bypasses tryGet, so verify its delivered ranges
		// here; a corrupted range is refetched as a unit through netGet
		// (which re-verifies).
		for i := 0; i < delivered; i++ {
			r := &rem[i]
			if c.verifyRange(r) != nil {
				if err := c.netGet(r.Dst, datatype.Byte, len(r.Dst), r.Target, r.Disp); err != nil {
					return err
				}
			}
		}
		if err == nil {
			return nil
		}
		// Retry the failing range as a unit and resume the batch after it.
		rem = rem[delivered:]
		r := &rem[0]
		if err := c.netGet(r.Dst, datatype.Byte, len(r.Dst), r.Target, r.Disp); err != nil {
			return err
		}
		rem = rem[1:]
	}
	for i := range rem {
		r := &rem[i]
		if err := c.netGet(r.Dst, datatype.Byte, len(r.Dst), r.Target, r.Disp); err != nil {
			return err
		}
	}
	return nil
}

// sortMisses orders the batch's misses by (target, disp, size descending,
// submission order): per-target address order is what the merge scan
// needs, and size-descending within a key makes the first instance of a
// duplicated key the one that admits the (largest) entry.
func sortMisses(ms []batchMiss) {
	slices.SortFunc(ms, func(a, b batchMiss) int {
		switch {
		case a.target != b.target:
			return a.target - b.target
		case a.disp != b.disp:
			return a.disp - b.disp
		case a.size != b.size:
			return b.size - a.size
		default:
			return a.op - b.op
		}
	})
}

// stageBuf carves n bytes off the epoch-lifetime staging arena. The
// returned slice stays valid until the pending queue drains (epoch
// closure or invalidation) even if the arena's backing array is replaced
// mid-epoch: the old array remains referenced by the slices cut from it.
// Capacity is kept across epochs, so steady-state batches allocate
// nothing here.
func (c *Cache) stageBuf(n int) []byte {
	if len(c.arena)+n > cap(c.arena) {
		c.arena = make([]byte, 0, max(n, 64<<10))
	}
	s := c.arena[len(c.arena) : len(c.arena)+n : len(c.arena)+n]
	c.arena = c.arena[:len(c.arena)+n]
	return s
}
