package core

import (
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

func TestInvalidateRange(t *testing.T) {
	withCache(t, 8192, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 256)
		// Cache three disjoint entries: [0,256), [512,768), [1024,1280).
		for _, d := range []int{0, 512, 1024} {
			if err := c.Get(dst, datatype.Byte, 256, 1, d); err != nil {
				return err
			}
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if c.CachedEntries() != 3 {
			t.Fatalf("CachedEntries = %d", c.CachedEntries())
		}

		// A range overlapping only the middle entry.
		if n := c.InvalidateRange(1, 700, 100); n != 1 {
			t.Errorf("InvalidateRange(700,100) dropped %d, want 1", n)
		}
		if c.CachedEntries() != 2 {
			t.Errorf("CachedEntries = %d, want 2", c.CachedEntries())
		}
		if err := c.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}

		// Wrong target: nothing dropped.
		if n := c.InvalidateRange(0, 0, 8192); n != 0 {
			t.Errorf("wrong-target invalidation dropped %d", n)
		}
		// Abutting but not overlapping: nothing dropped.
		if n := c.InvalidateRange(1, 256, 256); n != 0 {
			t.Errorf("abutting invalidation dropped %d", n)
		}
		// Empty/negative size: nothing dropped.
		if n := c.InvalidateRange(1, 0, 0); n != 0 {
			t.Errorf("empty invalidation dropped %d", n)
		}
		// Whole-window range drops the rest.
		if n := c.InvalidateRange(1, 0, 8192); n != 2 {
			t.Errorf("full invalidation dropped %d, want 2", n)
		}
		if c.CachedEntries() != 0 {
			t.Errorf("CachedEntries = %d", c.CachedEntries())
		}
		return c.CheckIntegrity()
	})
}

func TestPutInvalidatesOverlap(t *testing.T) {
	// A put through the cache layer must invalidate the overlapping
	// entry so the next get re-fetches fresh data.
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 1024)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, alwaysParams())
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = func() error {
					dst := make([]byte, 64)
					if err := c.Get(dst, datatype.Byte, 64, 1, 128); err != nil {
						return err
					}
					if err := win.FlushAll(); err != nil {
						return err
					}
					// Overwrite part of the cached range remotely.
					newData := make([]byte, 16)
					for i := range newData {
						newData[i] = 0xAA
					}
					if err := c.Put(newData, datatype.Byte, 16, 1, 160); err != nil {
						return err
					}
					if err := win.FlushAll(); err != nil {
						return err
					}
					// The entry must be gone; the re-get sees the write.
					if c.CachedEntries() != 0 {
						t.Errorf("stale entry survived the put")
					}
					if err := c.Get(dst, datatype.Byte, 64, 1, 128); err != nil {
						return err
					}
					if a := c.LastAccess(); a.Type != AccessDirect {
						t.Errorf("re-get was %v, want direct (refetched)", a.Type)
					}
					if err := win.FlushAll(); err != nil {
						return err
					}
					for i := 0; i < 64; i++ {
						want := pattern(128 + i)
						if i >= 32 && i < 48 {
							want = 0xAA
						}
						if dst[i] != want {
							t.Errorf("byte %d: got %d want %d", i, dst[i], want)
							break
						}
					}
					return nil
				}()
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutWithStridedDatatypeInvalidatesSpan(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := c.Get(dst, datatype.Byte, 64, 1, 96); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		// Strided put whose extent [0, 128) covers the cached [96, 160)
		// prefix even though its last block ends before 96.
		vt := datatype.Vector(2, 16, 64, datatype.Byte) // blocks at 0 and 64, extent 80... spans into the entry once count considered
		src := make([]byte, vt.Size()*2)
		if err := c.Put(src, vt, 2, 1, 0); err != nil {
			return err
		}
		if c.CachedEntries() != 0 {
			t.Errorf("strided put left %d entries (span not invalidated)", c.CachedEntries())
		}
		return win.FlushAll()
	})
}

func TestInvalidateRangeOnPendingEntrySatisfiesWaiters(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		a := make([]byte, 128)
		b := make([]byte, 128)
		if err := c.Get(a, datatype.Byte, 128, 1, 256); err != nil {
			return err
		}
		// Same-epoch repeat: b becomes a waiter on the PENDING entry.
		if err := c.Get(b, datatype.Byte, 128, 1, 256); err != nil {
			return err
		}
		if n := c.InvalidateRange(1, 256, 64); n != 1 {
			t.Errorf("dropped %d, want 1", n)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, a, 256)
		checkData(t, b, 256) // waiter satisfied despite the invalidation
		return c.CheckIntegrity()
	})
}
