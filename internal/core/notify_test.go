package core

import (
	"bytes"
	"errors"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/fault"
	"clampi/internal/mpi"
	"clampi/internal/rma"
)

// withNotifyWorld runs a 2-rank world: rank 1 owns a pattern-filled
// region and plays the remote writer, rank 0 attaches a Cache with
// params and plays the cached reader. Both ranks hold a passive LockAll
// epoch; reader and writer must issue matching r.Barrier() counts to
// sequence their scripts.
func withNotifyWorld(t *testing.T, regionSize int, params Params,
	reader func(c *Cache, win *mpi.Win, r *mpi.Rank) error,
	writer func(win *mpi.Win, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, params)
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = reader(c, win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			fnErr = win.LockAll()
			if fnErr == nil {
				fnErr = writer(win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fill returns n bytes of v.
func fill(n int, v byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}

// TestNotifyTargetedInvalidation: a notified sub-span write invalidates
// exactly the overlapping entry; untouched entries survive both the
// write and the transparent-mode epoch closure (no blanket
// invalidation).
func TestNotifyTargetedInvalidation(t *testing.T) {
	params := Params{NotifyTargeted: true}
	reader := func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		a, b := make([]byte, 64), make([]byte, 64)
		if err := c.Get(a, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := c.Get(b, datatype.Byte, 64, 1, 128); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil { // entries CACHED, epoch closed
			return err
		}
		r.Barrier() // writer goes
		r.Barrier() // write landed
		if err := c.Get(a, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := c.Get(b, datatype.Byte, 64, 1, 128); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if !bytes.Equal(a[:16], fill(16, 0xAA)) {
			t.Errorf("invalidated span served stale: a[0:16] = %v", a[:16])
		}
		checkData(t, a[16:], 16)
		checkData(t, b, 128)
		st := c.Stats()
		if st.Notifications != 1 || st.NotifyInvalidations != 1 || st.NotifyPatches != 0 {
			t.Errorf("notify counters = %d/%d/%d, want 1/1/0",
				st.Notifications, st.NotifyInvalidations, st.NotifyPatches)
		}
		if st.Invalidations != 0 {
			t.Errorf("blanket invalidations = %d, want 0 (targeted mode)", st.Invalidations)
		}
		if st.FullHits != 1 {
			t.Errorf("FullHits = %d, want 1 (the untouched entry)", st.FullHits)
		}
		return nil
	}
	writer := func(win *mpi.Win, r *mpi.Rank) error {
		r.Barrier()
		// 16 bytes into a 64-byte cached entry: carried data cannot
		// patch (not an exact cover), so the reader must invalidate.
		err := win.PutNotify(fill(16, 0xAA), datatype.Byte, 16, 1, 0, 1)
		r.Barrier()
		return err
	}
	withNotifyWorld(t, 512, params, reader, writer)
}

// TestNotifyPatchKeepsHit: an exactly-covering notified write patches
// the cached entry in place — the next read hits locally and sees the
// new bytes without any network traffic.
func TestNotifyPatchKeepsHit(t *testing.T) {
	params := Params{NotifyTargeted: true}
	reader := func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		buf := make([]byte, 64)
		if err := c.Get(buf, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		r.Barrier()
		r.Barrier()
		preNet := c.Stats().BytesFromNetwork
		if err := c.Get(buf, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if !bytes.Equal(buf, fill(64, 0xBB)) {
			t.Errorf("patched entry served wrong bytes: %v...", buf[:8])
		}
		st := c.Stats()
		if st.NotifyPatches != 1 || st.NotifyInvalidations != 0 {
			t.Errorf("patches/invalidations = %d/%d, want 1/0", st.NotifyPatches, st.NotifyInvalidations)
		}
		if st.BytesFromNetwork != preNet {
			t.Errorf("patched hit crossed the network: %d -> %d bytes", preNet, st.BytesFromNetwork)
		}
		if st.FullHits != 1 {
			t.Errorf("FullHits = %d, want 1", st.FullHits)
		}
		return nil
	}
	writer := func(win *mpi.Win, r *mpi.Rank) error {
		r.Barrier()
		err := win.PutNotify(fill(64, 0xBB), datatype.Byte, 64, 1, 0, 7)
		r.Barrier()
		return err
	}
	withNotifyWorld(t, 512, params, reader, writer)
}

// TestNotifyOverflowFallsBack: when the bounded queue sheds descriptors
// the reader cannot know which spans changed, so the drain falls back to
// one conservative full invalidation — bounded staleness degrades to
// correctness, never to silent staleness.
func TestNotifyOverflowFallsBack(t *testing.T) {
	params := Params{NotifyTargeted: true, NotifyQueueCap: 4}
	const pushes = 8
	reader := func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		buf := make([]byte, 64)
		if err := c.Get(buf, datatype.Byte, 64, 1, 256); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		r.Barrier()
		r.Barrier()
		if err := c.Get(buf, datatype.Byte, 64, 1, 256); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, buf, 256) // span untouched by the writes
		st := c.Stats()
		if st.Invalidations < 1 {
			t.Errorf("Invalidations = %d, want >= 1 (overflow fallback)", st.Invalidations)
		}
		if st.Notifications > pushes {
			t.Errorf("Notifications = %d beyond the %d pushed", st.Notifications, pushes)
		}
		if st.FullHits != 0 {
			t.Errorf("FullHits = %d, want 0: the fallback must have emptied the cache", st.FullHits)
		}
		return nil
	}
	writer := func(win *mpi.Win, r *mpi.Rank) error {
		r.Barrier()
		for i := 0; i < pushes; i++ {
			if err := win.PutNotify([]byte{0xEE}, datatype.Byte, 1, 1, i, uint32(i)); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	}
	withNotifyWorld(t, 512, params, reader, writer)
}

// TestNotifyDuplicateNeverPatches: under duplicate delivery (fault
// decorator) the redelivered descriptor invalidates its span instead of
// patching — stale carried bytes can never overwrite newer data — and
// subsequent reads refetch fresh bytes.
func TestNotifyDuplicateNeverPatches(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 512)
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fw := fault.Wrap(win, fault.Scenario{Name: "ndup", NotifyDupRate: 1}, 7)
			c, err := New(fw, Params{NotifyTargeted: true})
			if err != nil {
				return err
			}
			if fnErr = win.LockAll(); fnErr == nil {
				buf := make([]byte, 64)
				fnErr = c.Get(buf, datatype.Byte, 64, 1, 0)
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				r.Barrier()
				r.Barrier()
				if fnErr == nil {
					fnErr = c.Get(buf, datatype.Byte, 64, 1, 0)
				}
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				if fnErr == nil {
					if !bytes.Equal(buf, fill(64, 0xCC)) {
						t.Errorf("read after duplicated notification is stale or torn: %v...", buf[:8])
					}
					st := c.Stats()
					if st.NotifyPatches != 1 {
						t.Errorf("NotifyPatches = %d, want 1 (only the in-order copy)", st.NotifyPatches)
					}
					if st.NotifyInvalidations != 1 {
						t.Errorf("NotifyInvalidations = %d, want 1 (the duplicate)", st.NotifyInvalidations)
					}
				}
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			if fnErr = win.LockAll(); fnErr == nil {
				r.Barrier()
				fnErr = win.PutNotify(fill(64, 0xCC), datatype.Byte, 64, 1, 0, 3)
				r.Barrier()
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyDropFallsBack: lost descriptors (fault drop) leave sequence
// gaps; the first surviving descriptor past a gap triggers the
// conservative full invalidation, so reads stay fresh.
func TestNotifyDropFallsBack(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 512)
		for i := range region {
			region[i] = pattern(i)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fw := fault.Wrap(win, fault.Scenario{Name: "ndrop", NotifyDropRate: 0.5}, 11)
			c, err := New(fw, Params{NotifyTargeted: true})
			if err != nil {
				return err
			}
			if fnErr = win.LockAll(); fnErr == nil {
				buf := make([]byte, 64)
				fnErr = c.Get(buf, datatype.Byte, 64, 1, 256)
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				r.Barrier()
				r.Barrier()
				if fnErr == nil {
					fnErr = c.Get(buf, datatype.Byte, 64, 1, 256)
				}
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				if fnErr == nil {
					checkData(t, buf, 256)
					st := c.Stats()
					fc := fw.Counts()
					if fc.NotifyDrops == 0 {
						t.Fatalf("scenario dropped nothing; pick another seed")
					}
					if st.Invalidations < 1 {
						t.Errorf("Invalidations = %d, want >= 1 (gap fallback after %d drops)",
							st.Invalidations, fc.NotifyDrops)
					}
				}
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			if fnErr = win.LockAll(); fnErr == nil {
				r.Barrier()
				for i := 0; i < 16 && fnErr == nil; i++ {
					fnErr = win.PutNotify([]byte{0xDD}, datatype.Byte, 1, 1, i, uint32(i))
				}
				r.Barrier()
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyTailDropFallsBack: with every notification dropped there is
// never a later arrival to expose an in-queue sequence gap — the queue
// drains empty and looks clean. The reader must still notice the loss by
// trailing the delivered-count register (NotifyLastSeq) after the drain
// and fall back to a blanket invalidation, so the next Get refetches the
// fresh bytes instead of serving the stale cached span.
func TestNotifyTailDropFallsBack(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 512)
		for i := range region {
			region[i] = pattern(i)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fw := fault.Wrap(win, fault.Scenario{Name: "ntail", NotifyDropRate: 1}, 7)
			c, err := New(fw, Params{NotifyTargeted: true})
			if err != nil {
				return err
			}
			if fnErr = win.LockAll(); fnErr == nil {
				buf := make([]byte, 64)
				fnErr = c.Get(buf, datatype.Byte, 64, 1, 128)
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				r.Barrier()
				r.Barrier()
				if fnErr == nil {
					fnErr = c.Get(buf, datatype.Byte, 64, 1, 128)
				}
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				if fnErr == nil {
					want := bytes.Repeat([]byte{0xEE}, 64)
					if !bytes.Equal(buf, want) {
						t.Errorf("Get after tail drop = % x..., want all 0xEE (stale cache served)", buf[:8])
					}
					st := c.Stats()
					fc := fw.Counts()
					if fc.NotifyDrops == 0 {
						t.Fatalf("injector dropped nothing despite rate 1.0")
					}
					if st.Invalidations < 1 {
						t.Errorf("Invalidations = %d, want >= 1 (tail-loss reconciliation after %d drops)",
							st.Invalidations, fc.NotifyDrops)
					}
				}
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			if fnErr = win.LockAll(); fnErr == nil {
				r.Barrier()
				src := bytes.Repeat([]byte{0xEE}, 64)
				fnErr = win.PutNotify(src, datatype.Byte, 64, 1, 128, 42)
				if fnErr == nil {
					fnErr = win.FlushAll()
				}
				r.Barrier()
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteHitPatch: a dense Put exactly covering a cached entry patches
// it in place — the entry keeps hitting and serves the new bytes, while
// the write still reaches the target (write-through).
func TestWriteHitPatch(t *testing.T) {
	reader := func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		buf := make([]byte, 64)
		if err := c.Get(buf, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		// New epoch: patch the entry with a write, then read it back.
		if err := c.Get(buf, datatype.Byte, 64, 1, 0); err != nil { // re-prime post-closure
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		preNet := c.Stats().BytesFromNetwork
		if err := c.Put(fill(64, 0xDD), datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := c.Get(buf, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if !bytes.Equal(buf, fill(64, 0xDD)) {
			t.Errorf("write-hit entry served stale bytes: %v...", buf[:8])
		}
		st := c.Stats()
		if st.WriteHits != 1 {
			t.Errorf("WriteHits = %d, want 1", st.WriteHits)
		}
		if st.BytesFromNetwork != preNet {
			t.Errorf("read after write hit crossed the network: %d -> %d", preNet, st.BytesFromNetwork)
		}
		r.Barrier()
		return nil
	}
	writer := func(win *mpi.Win, r *mpi.Rank) error {
		r.Barrier()
		return nil
	}
	// NotifyTargeted keeps entries across the FlushAll closures; the
	// write-hit machinery itself works in any mode.
	withNotifyWorld(t, 512, Params{NotifyTargeted: true}, reader, writer)
}

// TestWriteBackCoalesces: write-back staging holds dense puts in the
// dirty buffer, merges exactly-adjacent spans into one flush message,
// and read-your-writes forces the flush before an overlapping read.
func TestWriteBackCoalesces(t *testing.T) {
	params := Params{WriteBack: true}
	reader := func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		for i, v := range []byte{0xC0, 0xC1, 0xC2} {
			if err := c.Put(fill(16, v), datatype.Byte, 16, 1, i*16); err != nil {
				return err
			}
		}
		if err := c.Put(fill(16, 0xC9), datatype.Byte, 16, 1, 256); err != nil {
			return err
		}
		st := c.Stats()
		if st.WriteBacks != 4 || st.DirtyFlushes != 0 {
			t.Errorf("staged: WriteBacks=%d DirtyFlushes=%d, want 4 staged, 0 flushed",
				st.WriteBacks, st.DirtyFlushes)
		}
		// Read-your-writes: this read overlaps a staged span, so the
		// buffer must flush first and the read sees the written bytes.
		buf := make([]byte, 16)
		if err := c.Get(buf, datatype.Byte, 16, 1, 16); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if !bytes.Equal(buf, fill(16, 0xC1)) {
			t.Errorf("read-your-writes violated: %v", buf)
		}
		st = c.Stats()
		if st.DirtyFlushes != 2 {
			t.Errorf("DirtyFlushes = %d, want 2 (one merged [0,48) run + the distant span)", st.DirtyFlushes)
		}
		r.Barrier() // writer verifies its region
		r.Barrier()
		return nil
	}
	writer := func(win *mpi.Win, r *mpi.Rank) error {
		r.Barrier()
		r.Barrier()
		return nil
	}
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 512)
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if fnErr = win.LockAll(); fnErr == nil {
				fnErr = reader(c, win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			if fnErr = win.LockAll(); fnErr == nil {
				fnErr = writer(win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
			// The coalesced flush must have landed every span.
			for i, v := range []byte{0xC0, 0xC1, 0xC2} {
				if !bytes.Equal(region[i*16:(i+1)*16], fill(16, v)) {
					t.Errorf("span %d not delivered: %v", i, region[i*16:i*16+4])
				}
			}
			if !bytes.Equal(region[256:272], fill(16, 0xC9)) {
				t.Errorf("distant span not delivered")
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteBackFlushesAtEpochClose: spans staged without any forcing
// read flush when the epoch closes.
func TestWriteBackFlushesAtEpochClose(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 256)
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			c, err := New(win, Params{WriteBack: true})
			if err != nil {
				return err
			}
			if fnErr = win.LockAll(); fnErr == nil {
				fnErr = c.Put(fill(32, 0x5A), datatype.Byte, 32, 1, 64)
				if fnErr == nil {
					fnErr = win.FlushAll() // epoch closure flushes the buffer
				}
				if st := c.Stats(); fnErr == nil && (st.WriteBacks != 1 || st.DirtyFlushes != 1) {
					t.Errorf("WriteBacks=%d DirtyFlushes=%d, want 1/1", st.WriteBacks, st.DirtyFlushes)
				}
				r.Barrier()
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		} else {
			if fnErr = win.LockAll(); fnErr == nil {
				r.Barrier()
				if !bytes.Equal(region[64:96], fill(32, 0x5A)) {
					t.Errorf("epoch-close flush did not deliver: %v", region[64:68])
				}
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// plainWin hides the backend's notification extension.
type plainWin struct{ rma.Window }

// TestNotifyWithoutExtension: NotifyTargeted over a backend without the
// extension is silently inert (like LocalityAware), and PutNotify
// reports ErrNoNotify.
func TestNotifyWithoutExtension(t *testing.T) {
	err := mpi.Run(1, mpi.Config{}, func(r *mpi.Rank) error {
		win := r.WinCreate(make([]byte, 64), nil)
		defer win.Free()
		c, err := New(plainWin{win}, Params{NotifyTargeted: true})
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if err := c.PutNotify([]byte{1}, datatype.Byte, 1, 0, 0, 0); !errors.Is(err, ErrNoNotify) {
			t.Errorf("PutNotify = %v, want ErrNoNotify", err)
		}
		if d := c.NotifyQueueDepth(); d != 0 {
			t.Errorf("NotifyQueueDepth = %d, want 0", d)
		}
		// Plain gets and puts still work.
		if err := c.Put([]byte{42}, datatype.Byte, 1, 0, 8); err != nil {
			t.Errorf("Put through inert notify config: %v", err)
		}
		buf := make([]byte, 1)
		if err := c.Get(buf, datatype.Byte, 1, 0, 8); err != nil {
			t.Errorf("Get through inert notify config: %v", err)
		}
		return win.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}
