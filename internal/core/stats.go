package core

import (
	"fmt"

	"clampi/internal/simtime"
)

// AccessType classifies the outcome of a get_c (paper §III-B).
type AccessType int

const (
	// AccessHit is a hitting access: the lookup found a CACHED or
	// PENDING entry (full or partial).
	AccessHit AccessType = iota
	// AccessDirect stored the new entry without any eviction.
	AccessDirect
	// AccessConflicting required evicting an entry on the Cuckoo
	// insertion path (index conflict).
	AccessConflicting
	// AccessCapacity required evicting an entry to make room in S_w,
	// after which the allocation succeeded.
	AccessCapacity
	// AccessFailing could not cache the data: the single permitted
	// eviction did not free enough space (weak caching, §III-D2).
	AccessFailing
)

// String returns the paper's access-type name.
func (a AccessType) String() string {
	switch a {
	case AccessHit:
		return "hitting"
	case AccessDirect:
		return "direct"
	case AccessConflicting:
		return "conflicting"
	case AccessCapacity:
		return "capacity"
	case AccessFailing:
		return "failing"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Stats aggregates the caching-layer counters reported throughout the
// paper's evaluation (Figs. 11, 13, 16, 18).
type Stats struct {
	Gets int64 // total get_c processed

	Hits        int64 // hitting accesses (CACHED or PENDING lookups)
	FullHits    int64
	PartialHits int64
	PendingHits int64 // subset of Hits that matched a PENDING entry

	Direct      int64
	Conflicting int64
	Capacity    int64
	Failing     int64

	Prefetches       int64 // Prefetch calls (each also counted in Gets)
	Evictions        int64 // victim evictions (capacity + conflict)
	VisitedSlots     int64 // index slots visited by capacity/failed eviction scans
	NonEmptyVisited  int64 // of those, slots holding an entry
	EvictionScans    int64 // number of capacity/failed eviction scans
	Invalidations    int64 // cache invalidations (any cause)
	Adjustments      int64 // adaptive parameter changes
	BytesFromCache   int64 // payload served locally
	BytesFromNetwork int64 // payload fetched remotely

	// Batched-get counters (GetBatch, DESIGN.md §10).
	BatchOps      int64 // gets submitted through GetBatch (subset of Gets)
	BatchMisses   int64 // batched contiguous misses that entered coalescing
	BatchMessages int64 // merged remote messages issued for those misses

	// Resilience counters (DESIGN.md §11).
	Retries      int64 // remote-get attempts re-issued after a transient failure
	Timeouts     int64 // transient failures that were timeouts (rma.ErrTimeout)
	StaleServes  int64 // hits served from entries kept across a deferred invalidation
	BreakerOpens int64 // circuit-breaker transitions to open (incl. reopens)
	CorruptFills int64 // fills rejected by integrity verification

	// Locality-tier counters (DESIGN.md §15).
	L2Hits          int64 // misses served from the node-shared L2 tier
	L2Fills         int64 // blocks this rank published into L2
	SiblingForwards int64 // L2 hits served from a sibling rank's fill
	CheapSkips      int64 // admissions bypassed: near target, fill below threshold

	// Notifiable-RMA counters (DESIGN.md §16).
	Notifications       int64 // notification descriptors drained
	NotifyInvalidations int64 // descriptors applied as targeted range invalidations
	NotifyPatches       int64 // descriptors applied as in-place payload patches
	WriteHits           int64 // writes patched into an exactly-covering cached entry
	WriteBacks          int64 // dirty spans staged by write-back
	DirtyFlushes        int64 // coalesced dirty runs flushed to the network

	// Time attribution (virtual, measured portions).
	LookupTime simtime.Duration
	EvictTime  simtime.Duration
	CopyTime   simtime.Duration
	MgmtTime   simtime.Duration // allocation + index insertion
}

// HitRate returns Hits/Gets (0 when no gets).
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Rate returns counter/Gets for the given access counter.
func (s Stats) Rate(a AccessType) float64 {
	if s.Gets == 0 {
		return 0
	}
	var c int64
	switch a {
	case AccessHit:
		c = s.Hits
	case AccessDirect:
		c = s.Direct
	case AccessConflicting:
		c = s.Conflicting
	case AccessCapacity:
		c = s.Capacity
	case AccessFailing:
		c = s.Failing
	}
	return float64(c) / float64(s.Gets)
}

// BatchCoalesceRatio returns BatchMisses/BatchMessages — the mean number
// of constituent misses amortized per merged remote message (1.0 means
// coalescing never merged anything; 0 when no batched miss occurred).
func (s Stats) BatchCoalesceRatio() float64 {
	if s.BatchMessages == 0 {
		return 0
	}
	return float64(s.BatchMisses) / float64(s.BatchMessages)
}

// AvgVisitedPerEviction returns the mean number of index slots visited per
// capacity/failed eviction scan (Fig. 11, top).
func (s Stats) AvgVisitedPerEviction() float64 {
	if s.EvictionScans == 0 {
		return 0
	}
	return float64(s.VisitedSlots) / float64(s.EvictionScans)
}

// AvgNonEmptyVisited returns the mean non-empty slots visited per scan
// (Fig. 11, bottom) — the paper's victim-selection quality indicator q.
func (s Stats) AvgNonEmptyVisited() float64 {
	if s.EvictionScans == 0 {
		return 0
	}
	return float64(s.NonEmptyVisited) / float64(s.VisitedSlots)
}

// Add returns s + o, field by field — the aggregation dual of Sub, used
// to total per-rank or per-window stats.
func (s Stats) Add(o Stats) Stats {
	t := s
	t.add(&o)
	return t
}

// add accumulates o into s (used to total per-window stats).
func (s *Stats) add(o *Stats) {
	s.Gets += o.Gets
	s.Hits += o.Hits
	s.FullHits += o.FullHits
	s.PartialHits += o.PartialHits
	s.PendingHits += o.PendingHits
	s.Direct += o.Direct
	s.Conflicting += o.Conflicting
	s.Capacity += o.Capacity
	s.Failing += o.Failing
	s.Prefetches += o.Prefetches
	s.Evictions += o.Evictions
	s.VisitedSlots += o.VisitedSlots
	s.NonEmptyVisited += o.NonEmptyVisited
	s.EvictionScans += o.EvictionScans
	s.Invalidations += o.Invalidations
	s.Adjustments += o.Adjustments
	s.BytesFromCache += o.BytesFromCache
	s.BytesFromNetwork += o.BytesFromNetwork
	s.BatchOps += o.BatchOps
	s.BatchMisses += o.BatchMisses
	s.BatchMessages += o.BatchMessages
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.StaleServes += o.StaleServes
	s.BreakerOpens += o.BreakerOpens
	s.CorruptFills += o.CorruptFills
	s.L2Hits += o.L2Hits
	s.L2Fills += o.L2Fills
	s.SiblingForwards += o.SiblingForwards
	s.CheapSkips += o.CheapSkips
	s.Notifications += o.Notifications
	s.NotifyInvalidations += o.NotifyInvalidations
	s.NotifyPatches += o.NotifyPatches
	s.WriteHits += o.WriteHits
	s.WriteBacks += o.WriteBacks
	s.DirtyFlushes += o.DirtyFlushes
	s.LookupTime += o.LookupTime
	s.EvictTime += o.EvictTime
	s.CopyTime += o.CopyTime
	s.MgmtTime += o.MgmtTime
}

// Sub returns the counter deltas accumulated since prev was snapshotted:
// s - prev, field by field. Callers use it to attribute counters to one
// phase of a run (snapshot before, Sub after) instead of hand-subtracting
// individual fields.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Gets -= prev.Gets
	d.Hits -= prev.Hits
	d.FullHits -= prev.FullHits
	d.PartialHits -= prev.PartialHits
	d.PendingHits -= prev.PendingHits
	d.Direct -= prev.Direct
	d.Conflicting -= prev.Conflicting
	d.Capacity -= prev.Capacity
	d.Failing -= prev.Failing
	d.Prefetches -= prev.Prefetches
	d.Evictions -= prev.Evictions
	d.VisitedSlots -= prev.VisitedSlots
	d.NonEmptyVisited -= prev.NonEmptyVisited
	d.EvictionScans -= prev.EvictionScans
	d.Invalidations -= prev.Invalidations
	d.Adjustments -= prev.Adjustments
	d.BytesFromCache -= prev.BytesFromCache
	d.BytesFromNetwork -= prev.BytesFromNetwork
	d.BatchOps -= prev.BatchOps
	d.BatchMisses -= prev.BatchMisses
	d.BatchMessages -= prev.BatchMessages
	d.Retries -= prev.Retries
	d.Timeouts -= prev.Timeouts
	d.StaleServes -= prev.StaleServes
	d.BreakerOpens -= prev.BreakerOpens
	d.CorruptFills -= prev.CorruptFills
	d.L2Hits -= prev.L2Hits
	d.L2Fills -= prev.L2Fills
	d.SiblingForwards -= prev.SiblingForwards
	d.CheapSkips -= prev.CheapSkips
	d.Notifications -= prev.Notifications
	d.NotifyInvalidations -= prev.NotifyInvalidations
	d.NotifyPatches -= prev.NotifyPatches
	d.WriteHits -= prev.WriteHits
	d.WriteBacks -= prev.WriteBacks
	d.DirtyFlushes -= prev.DirtyFlushes
	d.LookupTime -= prev.LookupTime
	d.EvictTime -= prev.EvictTime
	d.CopyTime -= prev.CopyTime
	d.MgmtTime -= prev.MgmtTime
	return d
}

// String renders a compact human-readable summary of the counters.
func (s Stats) String() string {
	return fmt.Sprintf(
		"gets=%d hits=%d (%.1f%%, %d full/%d partial/%d pending) direct=%d conflicting=%d capacity=%d failing=%d evictions=%d invalidations=%d adjustments=%d",
		s.Gets, s.Hits, 100*s.HitRate(), s.FullHits, s.PartialHits, s.PendingHits,
		s.Direct, s.Conflicting, s.Capacity, s.Failing,
		s.Evictions, s.Invalidations, s.Adjustments)
}

// Access describes the last processed get_c: its classification and cost
// breakdown. The micro-benchmarks (Figs. 7–8) read it after each call.
type Access struct {
	Type    AccessType
	Partial bool
	// Lookup, Evict, Copy, Mgmt are the measured CPU costs of the
	// phases; Copy includes both cache→user and user→cache copies
	// attributed to this access (the latter added at epoch closure).
	Lookup simtime.Duration
	Evict  simtime.Duration
	Copy   simtime.Duration
	Mgmt   simtime.Duration
	// Issued reports whether a remote get was issued (false only for
	// full hits on CACHED/PENDING entries).
	Issued bool
}
