package core

// The resilient fill path (DESIGN.md §11): every remote get the caching
// layer issues — scalar misses, partial-hit suffixes, coalesced batch
// ranges — funnels through netGet, which layers three defenses over the
// raw transport call:
//
//   - retry with exponential backoff and deterministic jitter, entirely
//     in virtual time (Params.Retry);
//   - a per-target circuit breaker that fails fast while a target is
//     down and probes it half-open after a cooldown (Params.Breaker);
//   - checksum verification of dense fills against the backend's
//     integrity attestation, so silently corrupted payloads are rejected
//     (and refetched) instead of being delivered or cached
//     (Params.VerifyFills).
//
// When none of the three is configured, netGet is a direct call to
// Window.Get — the fault-free hot path pays one branch.

import (
	"errors"
	"fmt"

	"clampi/internal/datatype"
	"clampi/internal/rma"
)

// ErrBreakerOpen reports a get that failed fast because the target's
// circuit breaker is open. Matches rma.ErrTransient: the condition is
// recoverable (the breaker half-opens after its cooldown), so retry
// loops treat it like any other transient failure — except that the
// attempt never reaches the network and never feeds back into the
// breaker (tryGet returns before the transport call). The sentinel is a
// single package-level value, so the fail-fast path allocates nothing.
var ErrBreakerOpen = fmt.Errorf("%w: circuit breaker open", rma.ErrTransient)

// netGet issues one remote get through the resilience layer. It is the
// single network funnel of the caching layer: remoteGet, remoteGetRange
// and issueRanges all land here.
//
// The retry loop is closure-free and allocation-free; backoffs advance
// the origin's virtual clock with Advance (the origin is blocked
// waiting, not computing, so the wait is modelled rather than measured).
func (c *Cache) netGet(dst []byte, dtype datatype.Datatype, count, target, disp int) error {
	if c.distStats != nil {
		// Attribute the trip to the target's distance class at the
		// single funnel every remote fetch passes through.
		c.noteDistMiss(target, datatype.TransferSize(dtype, count))
	}
	if !c.resilient {
		return c.win.Get(dst, dtype, count, target, disp)
	}
	if c.dw == nil {
		return c.retryGet(dst, dtype, count, target, disp)
	}
	// Deadline-aware transport: clear the per-op bound on the way out so
	// a later non-resilient caller of the same window is not clipped by
	// this operation's leftover budget.
	err := c.retryGet(dst, dtype, count, target, disp)
	c.dw.SetOpDeadline(0)
	return err
}

// retryGet is netGet's retry loop, split out so the deadline-clearing
// epilogue above covers every exit path.
func (c *Cache) retryGet(dst []byte, dtype datatype.Datatype, count, target, disp int) error {
	start := c.clock.Now()
	attempt := 1
	for {
		if c.dw != nil && c.retry.Deadline > 0 {
			// Hand the transport the budget still unspent, so a socket op
			// that hangs fails with ErrTimeout inside the attempt instead
			// of blowing through the virtual-time deadline check below.
			// The transport maps the virtual duration onto a wall-clock
			// socket deadline (rma.DeadlineWindow); on the simulated
			// backend c.dw is nil and the check below is the only gate.
			remaining := c.retry.Deadline - (c.clock.Now() - start)
			if remaining <= 0 {
				return fmt.Errorf("%w: retry deadline exhausted", rma.ErrTimeout)
			}
			c.dw.SetOpDeadline(remaining)
		}
		err := c.tryGet(dst, dtype, count, target, disp)
		if err == nil {
			return nil
		}
		if !errors.Is(err, rma.ErrTransient) {
			return err // misuse family: retrying can never fix it
		}
		if errors.Is(err, rma.ErrTimeout) {
			c.stats.Timeouts++
		}
		if !c.retry.Unlimited() && attempt >= c.retry.MaxAttempts {
			return err
		}
		if c.retry.Budget > 0 && c.retryBudget >= c.retry.Budget {
			return err
		}
		// Cost-aware mode stretches the backoff by the target's distance:
		// a far peer is probed on its own RTT scale (DESIGN.md §15).
		d := c.scaledBackoff(c.retry.Backoff(attempt, c.retryRng), target)
		if c.retry.Deadline > 0 && c.clock.Now()-start+d > c.retry.Deadline {
			return err
		}
		c.clock.Advance(d)
		c.retryBudget++
		c.stats.Retries++
		attempt++
	}
}

// tryGet is one attempt of netGet: breaker gate, transport call,
// integrity verification, breaker bookkeeping.
func (c *Cache) tryGet(dst []byte, dtype datatype.Datatype, count, target, disp int) error {
	if c.brk != nil && !c.brk.allow(target, c.clock.Now()) {
		return ErrBreakerOpen
	}
	err := c.win.Get(dst, dtype, count, target, disp)
	if err == nil && c.verify && c.iw != nil {
		if size := datatype.TransferSize(dtype, count); size > 0 && dtype.Size() == dtype.Extent() {
			// Dense transfers only: a strided payload is not one
			// contiguous target range, so no single attestation covers it.
			err = c.verifyFill(dst[:size], target, disp, size) //clampi:epoch simulated transport fills dst at issue time; verification is the completion event (see verifyFill)
		}
	}
	if c.brk != nil {
		if err == nil {
			c.brk.onSuccess(target)
		} else if errors.Is(err, rma.ErrTransient) {
			// The fail-fast window scales with the target's distance in
			// cost-aware mode: re-certifying a far peer takes longer
			// than a same-socket one (DESIGN.md §15).
			if c.brk.onFailure(target, c.clock.Now(), c.breakerCooldown(target)) {
				c.stats.BreakerOpens++
			}
		}
	}
	return err
}

// verifyRange verifies one delivered byte-range get (the batch issue
// path); nil when verification is disabled or unsupported.
func (c *Cache) verifyRange(r *rma.GetOp) error {
	if !c.verify || c.iw == nil || len(r.Dst) == 0 {
		return nil
	}
	return c.verifyFill(r.Dst, r.Target, r.Disp, len(r.Dst))
}

// verifyFill compares a delivered payload against the backend's
// attestation of the target range. A mismatch is reported as
// rma.ErrCorrupt — transient, so the retry loop refetches. Ranges the
// backend cannot attest are accepted unverified.
//
// The simulated transport materializes payload bytes at issue time, so
// verification can run immediately; a real implementation would verify
// at the completion event instead (same state machine, later trigger).
func (c *Cache) verifyFill(data []byte, target, disp, size int) error {
	want, aerr := c.iw.Checksum(target, disp, size)
	if aerr != nil {
		return nil
	}
	var sum uint64
	mgmtT := c.charge(checksumCost(size), func() { sum = rma.ChecksumBytes(data) })
	c.recordMgmt(mgmtT)
	if sum != want {
		c.stats.CorruptFills++
		return rma.ErrCorrupt
	}
	return nil
}
