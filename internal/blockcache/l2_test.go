package blockcache

import (
	"bytes"
	"sync"
	"testing"
)

func l2pattern(target, i int) byte { return byte(i*7 + target*31 + 3) }

func l2region(target, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = l2pattern(target, i)
	}
	return b
}

func TestL2PublishLookup(t *testing.T) {
	l2, err := NewL2(64<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	region := l2region(3, 4096)
	if n := l2.Publish(0, 3, 0, region); n != 16 {
		t.Fatalf("published %d blocks, want 16", n)
	}
	// Unaligned span across two blocks, same rank that filled.
	dst := make([]byte, 300)
	hit, fwd := l2.Lookup(0, 3, 100, dst)
	if !hit || fwd {
		t.Fatalf("Lookup = (%v, %v), want hit without forward", hit, fwd)
	}
	if !bytes.Equal(dst, region[100:400]) {
		t.Fatalf("payload mismatch")
	}
	// Same span read by a sibling rank: a forward.
	hit, fwd = l2.Lookup(1, 3, 100, dst)
	if !hit || !fwd {
		t.Fatalf("sibling Lookup = (%v, %v), want forwarded hit", hit, fwd)
	}
	// A range not published misses.
	if hit, _ = l2.Lookup(0, 4, 0, dst); hit {
		t.Fatalf("unexpected hit on foreign target")
	}
	st := l2.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Fills != 16 || st.Forwards != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestL2ShortTailBlock(t *testing.T) {
	l2, err := NewL2(8<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Region ends mid-block: the tail publish is short.
	region := l2region(1, 300)
	if n := l2.Publish(2, 1, 0, region); n != 2 {
		t.Fatalf("published %d blocks, want 2", n)
	}
	dst := make([]byte, 40)
	hit, fwd := l2.Lookup(0, 1, 260, dst)
	if !hit || !fwd {
		t.Fatalf("Lookup = (%v, %v), want forwarded hit", hit, fwd)
	}
	if !bytes.Equal(dst, region[260:300]) {
		t.Fatalf("payload mismatch on short block")
	}
	// Bytes past the short tail are not resident.
	if hit, _ = l2.Lookup(0, 1, 260, make([]byte, 60)); hit {
		t.Fatalf("hit past region end")
	}
}

func TestL2FirstPublisherWins(t *testing.T) {
	l2, err := NewL2(8<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	region := l2region(0, 256)
	l2.Publish(5, 0, 0, region)
	l2.Publish(6, 0, 0, region) // racing duplicate fill: kept, not replaced
	dst := make([]byte, 256)
	if _, fwd := l2.Lookup(5, 0, 0, dst); fwd {
		t.Fatalf("provenance lost: first publisher was rank 5")
	}
	if st := l2.Stats(); st.Fills != 1 {
		t.Fatalf("duplicate publish counted as fill: %+v", st)
	}
}

func TestL2UnalignedPublishRejected(t *testing.T) {
	l2, err := NewL2(8<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n := l2.Publish(0, 0, 100, make([]byte, 256)); n != 0 {
		t.Fatalf("unaligned publish accepted: %d", n)
	}
}

func TestL2InvalidateRange(t *testing.T) {
	l2, err := NewL2(64<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	region := l2region(3, 4096)
	l2.Publish(0, 3, 0, region)
	l2.Publish(0, 4, 0, l2region(4, 1024))
	// A span straddling blocks 1 and 2 drops exactly those two blocks.
	if n := l2.InvalidateRange(3, 300, 300); n != 2 {
		t.Fatalf("InvalidateRange dropped %d blocks, want 2", n)
	}
	dst := make([]byte, 16)
	if hit, _ := l2.Lookup(0, 3, 300, dst); hit {
		t.Fatal("hit inside invalidated span")
	}
	// Neighbouring blocks and other targets stay resident.
	if hit, _ := l2.Lookup(0, 3, 0, dst); !hit {
		t.Fatal("block 0 lost by a [300,600) invalidation")
	}
	if hit, _ := l2.Lookup(0, 3, 768, dst); !hit {
		t.Fatal("block 3 lost by a [300,600) invalidation")
	}
	if hit, _ := l2.Lookup(0, 4, 256, dst); !hit {
		t.Fatal("foreign target lost by the invalidation")
	}
	// Empty spans and absent blocks are no-ops.
	if n := l2.InvalidateRange(3, 300, 0); n != 0 {
		t.Fatalf("empty-span invalidation dropped %d", n)
	}
	if n := l2.InvalidateRange(9, 0, 4096); n != 0 {
		t.Fatalf("absent-target invalidation dropped %d", n)
	}
	if st := l2.Stats(); st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", st.Invalidations)
	}
}

func TestL2Reset(t *testing.T) {
	l2, err := NewL2(8<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	l2.Publish(0, 0, 0, l2region(0, 256))
	l2.Reset()
	if hit, _ := l2.Lookup(0, 0, 0, make([]byte, 16)); hit {
		t.Fatalf("hit after Reset")
	}
}

// TestL2ConcurrentSiblings hammers one L2 from several goroutines
// standing in for sibling ranks — the -race configuration of the
// seqlock-read / fill-mutex-write discipline.
func TestL2ConcurrentSiblings(t *testing.T) {
	l2, err := NewL2(32<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	const (
		ranks   = 4
		rounds  = 400
		targets = 3
		span    = 8 << 10
	)
	regions := make([][]byte, targets)
	for tgt := range regions {
		regions[tgt] = l2region(tgt, span)
	}
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			dst := make([]byte, 300)
			for i := 0; i < rounds; i++ {
				tgt := (rank + i) % targets
				disp := (i * 37 * 256) % (span - len(dst))
				if hit, _ := l2.Lookup(rank, tgt, disp, dst); hit {
					if !bytes.Equal(dst, regions[tgt][disp:disp+len(dst)]) {
						t.Errorf("rank %d: torn read at target %d disp %d", rank, tgt, disp)
						return
					}
					continue
				}
				lo := disp - disp%256
				hi := lo + ((len(dst)+disp-lo+255)/256)*256
				if hi > span {
					hi = span
				}
				l2.Publish(rank, tgt, lo, regions[tgt][lo:hi])
			}
		}(rank)
	}
	wg.Wait()
	st := l2.Stats()
	if st.Hits == 0 || st.Fills == 0 {
		t.Fatalf("expected traffic in both directions: %+v", st)
	}
}
