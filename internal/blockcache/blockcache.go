// Package blockcache provides the block-granular caches of the
// reproduction, in two roles:
//
//   - Cache is the "native" baseline of the paper's Barnes-Hut
//     evaluation (§IV-B): a single-owner, direct-mapped block cache in
//     the style of the ad-hoc caching layers found in PGAS runtimes
//     (UPC, Chapel) and in the UPC Barnes-Hut code of Larkins et al.
//   - L2 (l2.go) is the node-shared second level of the locality-aware
//     cache stack: internal/core probes it on L1 misses, and one rank's
//     far-target fill serves every sibling rank on the node
//     (DESIGN.md §15).
//
// Both divide the remote address space of every target into fixed-size
// blocks; block (target, disp/B) maps to exactly one cache slot. A get
// touching k blocks checks the k slots: every miss fetches the whole
// block from the remote window before the requested bytes are copied out.
// Conflicts therefore depend directly on the cache memory size — the
// behaviour the paper observes in Fig. 12 ("the number of conflicts is
// strictly related to the available memory size") — and small requests
// waste most of their block (internal fragmentation, §II).
package blockcache

import (
	"errors"

	"clampi/internal/datatype"
	"clampi/internal/netsim"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// DefaultBlockSize is the block granularity used by the paper-equivalent
// configuration.
const DefaultBlockSize = 1024

// costTagCheck is the modeled CPU cost of one block tag check — the
// direct-mapped lookup is a single load and compare, cheaper than a
// Cuckoo lookup. Copies are charged via netsim.MemcpyCost, like CLaMPI's.
const costTagCheck = 15 * simtime.Nanosecond

// costAccess is the modeled fixed CPU cost of entering the native cache
// for one get: the PGAS-runtime work (shared-pointer decode, affinity
// check, cache dispatch) that the UPC software cache this baseline stands
// in for performs on every access.
const costAccess = 70 * simtime.Nanosecond

// Stats counts cache activity.
type Stats struct {
	Gets         int64
	BlockHits    int64
	BlockMisses  int64
	Conflicts    int64 // misses that displaced a valid block
	FetchedBytes int64 // bytes moved over the network (whole blocks)
	ServedBytes  int64 // payload bytes delivered to the application
}

// Cache is a direct-mapped block cache over one window. Not safe for
// concurrent use.
type Cache struct {
	win       rma.Window
	blockSize int
	nblocks   int
	data      []byte
	tags      []tag
	stats     Stats
}

type tag struct {
	target int
	block  int
	valid  bool
}

// ErrBadConfig reports invalid construction parameters.
var ErrBadConfig = errors.New("blockcache: memory must hold at least one block")

// New builds a cache of memoryBytes bytes with the given block size over
// win. memoryBytes is rounded down to a whole number of blocks.
func New(win rma.Window, memoryBytes, blockSize int) (*Cache, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := memoryBytes / blockSize
	if n <= 0 {
		return nil, ErrBadConfig
	}
	return &Cache{
		win:       win,
		blockSize: blockSize,
		nblocks:   n,
		data:      make([]byte, n*blockSize),
		tags:      make([]tag, n),
	}, nil
}

// slotOf maps (target, block) to its unique slot: direct mapping.
func (c *Cache) slotOf(target, block int) int {
	return (block + target*2654435761) % c.nblocks
}

// Get reads len(dst) bytes at displacement disp of target's region,
// serving from cached blocks and fetching missing blocks whole. Fetched
// data is valid after Flush, per the window's epoch semantics; the
// application (like the paper's UPC code) reads destination buffers only
// after synchronizing.
func (c *Cache) Get(dst []byte, target, disp int) error {
	size := len(dst)
	c.stats.Gets++
	c.stats.ServedBytes += int64(size)
	regionSize, err := c.win.RegionSize(target)
	if err != nil {
		return err
	}
	if disp < 0 || disp+size > regionSize {
		return rma.ErrBounds
	}
	clock := c.win.Endpoint().Clock()
	clock.Busy(costAccess)
	for off := 0; off < size; {
		block := (disp + off) / c.blockSize
		blockStart := block * c.blockSize
		// Bytes of this block that the request needs.
		lo := disp + off - blockStart
		n := c.blockSize - lo
		if n > size-off {
			n = size - off
		}
		slot := c.slotOf(target, block)
		clock.Busy(costTagCheck)
		t := &c.tags[slot]
		if !t.valid || t.target != target || t.block != block {
			// Miss: fetch the whole block (clamped to region end).
			if t.valid {
				c.stats.Conflicts++
			}
			c.stats.BlockMisses++
			fetch := c.blockSize
			if blockStart+fetch > regionSize {
				fetch = regionSize - blockStart
			}
			buf := c.data[slot*c.blockSize : slot*c.blockSize+fetch]
			if err := c.win.Get(buf, datatype.Byte, fetch, target, blockStart); err != nil {
				return err
			}
			c.stats.FetchedBytes += int64(fetch)
			*t = tag{target: target, block: block, valid: true}
		} else {
			c.stats.BlockHits++
		}
		copy(dst[off:off+n], c.data[slot*c.blockSize+lo:slot*c.blockSize+lo+n])
		clock.Busy(netsim.MemcpyCost(n))
		off += n
	}
	return nil
}

// Flush completes outstanding block fetches (closes the epoch).
func (c *Cache) Flush() error { return c.win.FlushAll() }

// Invalidate drops every cached block.
func (c *Cache) Invalidate() {
	for i := range c.tags {
		c.tags[i] = tag{}
	}
}

// Name implements the getter interface label.
func (c *Cache) Name() string { return "native" }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockSize returns the block granularity.
func (c *Cache) BlockSize() int { return c.blockSize }

// Blocks returns the number of cache slots.
func (c *Cache) Blocks() int { return c.nblocks }
