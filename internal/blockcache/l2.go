package blockcache

import (
	"sync"
	"sync/atomic"
)

// L2 is the node-shared second level of the locality-aware cache stack
// (DESIGN.md §15). Where Cache above is the paper's single-owner
// "native" baseline, L2 is a concurrent tier that sits *behind*
// internal/core: every sibling rank on a node shares one L2 instance,
// so a block fetched from a far (other-node / other-group) target by
// one rank serves its node-mates from local memory — sibling-rank fill
// forwarding — instead of re-crossing the network.
//
// Concurrency follows the DESIGN.md §12 discipline:
//
//   - Reads are lock-free. Each slot publishes an *immutable* block box
//     through an atomic pointer; a per-slot version counter brackets
//     the read (seqlock shape) purely to detect concurrent overwrites —
//     the box itself can never tear, so a reader that exhausts its
//     retries still holds a self-consistent block.
//   - Fills serialize on striped publish mutexes ranked `fill`. At most
//     one stripe is held at a time (one block per acquisition), only
//     memory copies happen under it, and no other lock nests inside —
//     so the lockorder analyzer's single-fill and no-blocking-op rules
//     hold by construction.
type L2 struct {
	blockSize int
	nblocks   int
	slots     []l2slot
	stripes   []l2stripe

	lookups    atomic.Int64 // clampi:atomic — L2 probes (per get, not per block)
	hits       atomic.Int64 // clampi:atomic — probes fully served from L2
	misses     atomic.Int64 // clampi:atomic — probes with at least one absent block
	fills      atomic.Int64 // clampi:atomic — blocks published
	forwards   atomic.Int64 // clampi:atomic — hits served from a sibling's fill
	overwrites atomic.Int64 // clampi:atomic — publishes that displaced another block
	retries    atomic.Int64 // clampi:atomic — seqlock read brackets invalidated by a concurrent publish
	invals     atomic.Int64 // clampi:atomic — blocks dropped by range invalidation
}

// l2slot is one direct-mapped cache slot: an atomically published box
// plus its overwrite version.
type l2slot struct {
	seq atomic.Uint64           // clampi:atomic — bumped twice around every box swap (odd while swapping)
	box atomic.Pointer[l2block] // clampi:atomic — current immutable block, nil when empty
	_   [64 - 8 - 8]byte        // keep neighbouring slots off one cache line
}

// l2block is the immutable unit of publication: once a pointer to it is
// stored in a slot, nothing ever writes to it again. data holds a full
// block, or less when the block is cut short by the region end.
type l2block struct {
	target int
	block  int
	filler int // rank that paid the network fill — forwarding provenance
	data   []byte
}

// l2stripe is one publish lock. Stripes exist only to let unrelated
// slots fill in parallel; a single publish never holds two.
type l2stripe struct {
	mu sync.Mutex // clampi:lockrank fill — L2 publish lock: memcpy-only critical section, never nested
	_  [64]byte
}

// l2stripes is the number of publish locks; power of two for masking.
const l2stripes = 64

// L2Stats is a point-in-time snapshot of the shared tier's counters.
type L2Stats struct {
	Lookups       int64
	Hits          int64
	Misses        int64
	Fills         int64
	Forwards      int64
	Overwrites    int64
	Retries       int64
	Invalidations int64
}

// NewL2 builds a node-shared block tier of memoryBytes bytes with the
// given block granularity (DefaultBlockSize when blockSize <= 0).
// memoryBytes is rounded down to a whole number of blocks. The instance
// is safe for concurrent use by all sibling ranks of a node.
func NewL2(memoryBytes, blockSize int) (*L2, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := memoryBytes / blockSize
	if n <= 0 {
		return nil, ErrBadConfig
	}
	return &L2{
		blockSize: blockSize,
		nblocks:   n,
		slots:     make([]l2slot, n),
		stripes:   make([]l2stripe, l2stripes),
	}, nil
}

// BlockSize returns the block granularity.
func (l *L2) BlockSize() int { return l.blockSize }

// Blocks returns the number of cache slots.
func (l *L2) Blocks() int { return l.nblocks }

// slotOf maps (target, block) to its direct-mapped slot, reusing the
// Fibonacci-hash spread of the native baseline.
func (l *L2) slotOf(target, block int) int {
	return (block + target*2654435761) % l.nblocks
}

// Lookup probes the tier for the range [disp, disp+len(dst)) of
// target's region and, when every covering block is resident, copies
// the bytes into dst. reader is the probing rank; forwarded reports
// whether any served block was filled by a different rank (a sibling
// forward). On a miss dst may hold a partial prefix — callers overwrite
// it on the network path. Allocation-free; safe for concurrent use.
func (l *L2) Lookup(reader, target, disp int, dst []byte) (hit, forwarded bool) {
	l.lookups.Add(1)
	size := len(dst)
	for off := 0; off < size; {
		block := (disp + off) / l.blockSize
		blockStart := block * l.blockSize
		lo := disp + off - blockStart
		n := l.blockSize - lo
		if n > size-off {
			n = size - off
		}
		s := &l.slots[l.slotOf(target, block)]
		served := false
		for attempt := 0; attempt < 3 && !served; attempt++ {
			v1 := s.seq.Load()
			b := s.box.Load()
			if b == nil || b.target != target || b.block != block || lo+n > len(b.data) {
				break
			}
			copy(dst[off:off+n], b.data[lo:lo+n])
			if s.seq.Load() == v1 {
				served = true
				break
			}
			// The box is immutable, so the copy is self-consistent
			// even though the slot moved on; retry for freshness, and
			// past the retry budget accept the (valid) stale block.
			l.retries.Add(1)
			served = attempt == 2
		}
		if !served {
			l.misses.Add(1)
			return false, false
		}
		if b := s.box.Load(); b != nil && b.filler != reader {
			forwarded = true
		}
		off += n
	}
	l.hits.Add(1)
	if forwarded {
		l.forwards.Add(1)
	}
	return true, forwarded
}

// Publish stores the block-aligned range [disp, disp+len(src)) of
// target's region into the tier on behalf of rank filler, and returns
// the number of blocks actually published. disp must be a multiple of
// BlockSize; the final block may be short (region end). Blocks already
// resident (a sibling raced us to the same fill) are kept — first
// publisher wins, so forwarding provenance stays with the rank that
// paid the network trip. Safe for concurrent use.
func (l *L2) Publish(filler, target, disp int, src []byte) int {
	if disp%l.blockSize != 0 {
		return 0
	}
	published := 0
	for off := 0; off < len(src); off += l.blockSize {
		block := (disp + off) / l.blockSize
		end := off + l.blockSize
		if end > len(src) {
			end = len(src)
		}
		slot := l.slotOf(target, block)
		st := &l.stripes[slot%l2stripes]
		st.mu.Lock()
		s := &l.slots[slot]
		old := s.box.Load()
		if old != nil && old.target == target && old.block == block && len(old.data) >= end-off {
			st.mu.Unlock()
			continue
		}
		if old != nil {
			l.overwrites.Add(1)
		}
		nb := &l2block{
			target: target,
			block:  block,
			filler: filler,
			data:   append([]byte(nil), src[off:end]...),
		}
		s.seq.Add(1) // odd: swap in progress
		s.box.Store(nb)
		s.seq.Add(1) // even: published
		st.mu.Unlock()
		published++
	}
	l.fills.Add(int64(published))
	return published
}

// InvalidateRange drops every resident block of target overlapping the
// byte range [disp, disp+size) and returns the number dropped. This is
// the targeted-coherence hook (DESIGN.md §16): a write notification
// names an exact span, and only the blocks covering it leave the tier —
// sibling ranks keep everything else. Each drop follows the publish
// discipline (stripe lock, seqlock bracket around the box swap), so
// concurrent lock-free readers observe either the old block or an empty
// slot, never a torn state. Safe for concurrent use.
func (l *L2) InvalidateRange(target, disp, size int) int {
	if size <= 0 {
		return 0
	}
	dropped := 0
	first := disp / l.blockSize
	last := (disp + size - 1) / l.blockSize
	for block := first; block <= last; block++ {
		slot := l.slotOf(target, block)
		st := &l.stripes[slot%l2stripes]
		st.mu.Lock()
		s := &l.slots[slot]
		if b := s.box.Load(); b != nil && b.target == target && b.block == block {
			s.seq.Add(1) // odd: swap in progress
			s.box.Store(nil)
			s.seq.Add(1) // even: emptied
			dropped++
		}
		st.mu.Unlock()
	}
	l.invals.Add(int64(dropped))
	return dropped
}

// Reset drops every cached block (tests and explicit node-wide
// invalidation; per-rank epoch invalidation never clears the shared
// tier — see DESIGN.md §15 on why L2 serves read-only windows).
func (l *L2) Reset() {
	for i := range l.slots {
		s := &l.slots[i]
		st := &l.stripes[i%l2stripes]
		st.mu.Lock()
		s.seq.Add(1)
		s.box.Store(nil)
		s.seq.Add(1)
		st.mu.Unlock()
	}
}

// Stats returns a snapshot of the tier's counters.
func (l *L2) Stats() L2Stats {
	return L2Stats{
		Lookups:       l.lookups.Load(),
		Hits:          l.hits.Load(),
		Misses:        l.misses.Load(),
		Fills:         l.fills.Load(),
		Forwards:      l.forwards.Load(),
		Overwrites:    l.overwrites.Load(),
		Retries:       l.retries.Load(),
		Invalidations: l.invals.Load(),
	}
}
