package blockcache

import (
	"errors"
	"testing"

	"clampi/internal/mpi"
)

func pattern(off int) byte { return byte((off*11 + 5) ^ (off >> 2)) }

func withCache(t *testing.T, regionSize, memory, blockSize int, fn func(c *Cache, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			c, err := New(win, memory, blockSize)
			if err != nil {
				return err
			}
			if err := fn(c, r); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func checkData(t *testing.T, dst []byte, disp int) {
	t.Helper()
	for i, b := range dst {
		if b != pattern(disp+i) {
			t.Fatalf("byte %d (disp %d): got %d want %d", i, disp, b, pattern(disp+i))
		}
	}
}

func TestNewValidation(t *testing.T) {
	err := mpi.Run(1, mpi.Config{}, func(r *mpi.Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if _, err := New(win, 10, 1024); !errors.Is(err, ErrBadConfig) {
			t.Errorf("New with memory < block = %v", err)
		}
		c, err := New(win, 4096, 0)
		if err != nil {
			return err
		}
		if c.BlockSize() != DefaultBlockSize {
			t.Errorf("default block size = %d", c.BlockSize())
		}
		if c.Blocks() != 4 {
			t.Errorf("blocks = %d", c.Blocks())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissThenHit(t *testing.T) {
	withCache(t, 8192, 8192, 256, func(c *Cache, r *mpi.Rank) error {
		dst := make([]byte, 100)
		if err := c.Get(dst, 1, 300); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		checkData(t, dst, 300)
		s := c.Stats()
		if s.BlockMisses == 0 || s.BlockHits != 0 {
			t.Errorf("first get stats: %+v", s)
		}
		// Same range again: all block hits, no new fetched bytes.
		fetched := s.FetchedBytes
		if err := c.Get(dst, 1, 300); err != nil {
			return err
		}
		checkData(t, dst, 300)
		s = c.Stats()
		if s.BlockHits == 0 || s.FetchedBytes != fetched {
			t.Errorf("repeat get stats: %+v", s)
		}
		return nil
	})
}

func TestCrossBlockGet(t *testing.T) {
	withCache(t, 8192, 8192, 256, func(c *Cache, r *mpi.Rank) error {
		// A get spanning three blocks.
		dst := make([]byte, 600)
		if err := c.Get(dst, 1, 200); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		checkData(t, dst, 200)
		if s := c.Stats(); s.BlockMisses != 4 { // blocks 0..3 cover [200,800)
			t.Errorf("misses = %d, want 4", s.BlockMisses)
		}
		return nil
	})
}

func TestInternalFragmentationAccounting(t *testing.T) {
	// Small requests fetch whole blocks: fetched >> served (the
	// motivation for CLaMPI's variable-size entries, paper §II).
	withCache(t, 1<<16, 1<<16, 1024, func(c *Cache, r *mpi.Rank) error {
		dst := make([]byte, 16)
		for i := 0; i < 16; i++ {
			if err := c.Get(dst, 1, i*2048); err != nil {
				return err
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
		s := c.Stats()
		if s.FetchedBytes != 16*1024 {
			t.Errorf("fetched %d bytes", s.FetchedBytes)
		}
		if s.ServedBytes != 16*16 {
			t.Errorf("served %d bytes", s.ServedBytes)
		}
		if s.FetchedBytes < 60*s.ServedBytes {
			t.Errorf("expected heavy internal fragmentation: fetched=%d served=%d", s.FetchedBytes, s.ServedBytes)
		}
		return nil
	})
}

func TestDirectMappedConflicts(t *testing.T) {
	// Two blocks mapping to the same slot displace each other: with a
	// 1-block cache every alternating access conflicts.
	withCache(t, 8192, 256, 256, func(c *Cache, r *mpi.Rank) error {
		a := make([]byte, 64)
		b := make([]byte, 64)
		for i := 0; i < 4; i++ {
			if err := c.Get(a, 1, 0); err != nil {
				return err
			}
			if err := c.Get(b, 1, 4096); err != nil {
				return err
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
		checkData(t, a, 0)
		checkData(t, b, 4096)
		s := c.Stats()
		if s.Conflicts < 7 {
			t.Errorf("conflicts = %d, want >= 7 (thrash)", s.Conflicts)
		}
		return nil
	})
}

func TestLargerMemoryRemovesConflicts(t *testing.T) {
	// The paper's Fig. 12 observation: the native cache's performance
	// depends directly on its memory size.
	for _, mem := range []int{256, 8192} {
		var conflicts int64
		withCache(t, 8192, mem, 256, func(c *Cache, r *mpi.Rank) error {
			a := make([]byte, 64)
			b := make([]byte, 64)
			for i := 0; i < 4; i++ {
				if err := c.Get(a, 1, 0); err != nil {
					return err
				}
				if err := c.Get(b, 1, 4096); err != nil {
					return err
				}
			}
			if err := c.Flush(); err != nil {
				return err
			}
			conflicts = c.Stats().Conflicts
			return nil
		})
		if mem == 256 && conflicts == 0 {
			t.Errorf("small cache had no conflicts")
		}
		if mem == 8192 && conflicts != 0 {
			t.Errorf("large cache still conflicts: %d", conflicts)
		}
	}
}

func TestInvalidate(t *testing.T) {
	withCache(t, 4096, 4096, 256, func(c *Cache, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := c.Get(dst, 1, 0); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		c.Invalidate()
		missesBefore := c.Stats().BlockMisses
		if err := c.Get(dst, 1, 0); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if c.Stats().BlockMisses != missesBefore+1 {
			t.Errorf("no miss after invalidate")
		}
		return nil
	})
}

func TestBlockClampAtRegionEnd(t *testing.T) {
	// Region not a multiple of the block size: the final block fetch
	// must clamp.
	withCache(t, 300, 4096, 256, func(c *Cache, r *mpi.Rank) error {
		dst := make([]byte, 40)
		if err := c.Get(dst, 1, 260); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		checkData(t, dst, 260)
		return nil
	})
}

func TestGetErrors(t *testing.T) {
	withCache(t, 256, 4096, 256, func(c *Cache, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := c.Get(dst, 1, 250); !errors.Is(err, mpi.ErrBounds) {
			t.Errorf("out of bounds = %v", err)
		}
		if err := c.Get(dst, 1, -1); !errors.Is(err, mpi.ErrBounds) {
			t.Errorf("negative disp = %v", err)
		}
		if err := c.Get(dst, 9, 0); !errors.Is(err, mpi.ErrRankRange) {
			t.Errorf("bad rank = %v", err)
		}
		if c.Name() != "native" {
			t.Errorf("Name = %q", c.Name())
		}
		return nil
	})
}
