package interproc_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"clampi/internal/analysis"
	"clampi/internal/analysis/interproc"
)

// loadEngine loads the ip corpus and returns the engine over it, built
// exactly the way an analyzer obtains it: through a Pass's Program.
func loadEngine(t *testing.T) *interproc.Engine {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "ip"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader().LoadDir(dir, "ip")
	if err != nil {
		t.Fatal(err)
	}
	var eng *interproc.Engine
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "captures the interproc engine for golden assertions",
		Run: func(pass *analysis.Pass) error {
			eng = interproc.For(pass)
			return nil
		},
	}
	if _, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe}); err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("probe analyzer did not run")
	}
	return eng
}

// TestCallGraph asserts the resolved edges: direct calls, method
// calls, the method-value call, and the recursion cycle's back edge.
func TestCallGraph(t *testing.T) {
	eng := loadEngine(t)
	want := map[string][]string{
		"ip.viaHelper":        {"ip.withLock"},
		"ip.methodValue":      {"ip.(S).lockFill"},
		"ip.even":             {"ip.odd"},
		"ip.odd":              {"ip.even"},
		"ip.blockedViaHelper": {"ip.callsBlocked"},
		"ip.withLock":         nil,
	}
	for id, edges := range want {
		if got := eng.Callees(id); !reflect.DeepEqual(got, edges) && !(len(got) == 0 && len(edges) == 0) {
			t.Errorf("Callees(%s) = %v, want %v", id, got, edges)
		}
	}
}

// TestGoldenSummaries pins the lock-set summaries of every corpus
// shape. Query order matters only for the recursion cycle, where the
// test documents the cut: even is summarized first, so odd's recursive
// view of even is the empty summary.
func TestGoldenSummaries(t *testing.T) {
	eng := loadEngine(t)

	type golden struct {
		id         string
		during     []interproc.LockClass
		netAcquire map[interproc.LockClass]int
		netRelease map[interproc.LockClass]int
		blocking   bool
	}
	cases := []golden{
		// Net-effect helpers.
		{id: "ip.(S).lockFill", during: []interproc.LockClass{interproc.LockFill},
			netAcquire: map[interproc.LockClass]int{interproc.LockFill: 1}},
		{id: "ip.(S).unlockFill",
			netRelease: map[interproc.LockClass]int{interproc.LockFill: 1}},
		// Defer-released bracket: During fill, net zero.
		{id: "ip.withLock", during: []interproc.LockClass{interproc.LockFill}},
		// During propagates through a pure-call chain.
		{id: "ip.viaHelper", during: []interproc.LockClass{interproc.LockFill}},
		// The method value resolves: the acquire arrives through
		// f := s.lockFill (net +1), the direct Unlock balances it.
		{id: "ip.methodValue", during: []interproc.LockClass{interproc.LockFill}},
		// Recursion: even's own acquire is seen; odd — summarized
		// inside even's computation — saw the in-progress cut and
		// records no effects (documented caveat).
		{id: "ip.even", during: []interproc.LockClass{interproc.LockCuckoo}},
		{id: "ip.odd"},
		// Blocking propagates bottom-up.
		{id: "ip.callsBlocked", blocking: true},
		{id: "ip.blockedViaHelper", blocking: true},
	}
	// Force the documented query order for the cycle.
	_ = eng.Summary("ip.even")

	for _, g := range cases {
		s := eng.Summary(g.id)
		for _, c := range []interproc.LockClass{interproc.LockFill, interproc.LockCuckoo, interproc.LockStripe} {
			want := false
			for _, d := range g.during {
				if d == c {
					want = true
				}
			}
			if got := s.AcquiresDuring(c); got != want {
				t.Errorf("%s: During[%s] = %v, want %v", g.id, c, got, want)
			}
		}
		if !equalCounts(s.NetAcquire, g.netAcquire) {
			t.Errorf("%s: NetAcquire = %v, want %v", g.id, s.NetAcquire, g.netAcquire)
		}
		if !equalCounts(s.NetRelease, g.netRelease) {
			t.Errorf("%s: NetRelease = %v, want %v", g.id, s.NetRelease, g.netRelease)
		}
		if s.Blocking != g.blocking {
			t.Errorf("%s: Blocking = %v, want %v", g.id, s.Blocking, g.blocking)
		}
	}
}

func equalCounts(got, want map[interproc.LockClass]int) bool {
	if len(want) == 0 {
		return len(got) == 0
	}
	return reflect.DeepEqual(got, want)
}

// TestFunctionsIndexed asserts the FuncID scheme over the corpus: the
// package functions and methods are indexed under their stable IDs.
func TestFunctionsIndexed(t *testing.T) {
	eng := loadEngine(t)
	indexed := make(map[string]bool)
	for _, id := range eng.Functions() {
		indexed[id] = true
	}
	for _, id := range []string{
		"ip.withLock", "ip.viaHelper", "ip.methodValue",
		"ip.even", "ip.odd",
		"ip.(S).lockFill", "ip.(S).unlockFill", "ip.(client).RPC",
	} {
		if !indexed[id] {
			t.Errorf("Functions() missing %s (have %v)", id, eng.Functions())
		}
	}
}
