package interproc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"clampi/internal/analysis/typeutil"
)

// observerMethods are the core.Observer callback names; invoking any of
// them through an interface value is a blocking operation (the observer
// implementation is arbitrary user code, DESIGN.md §8).
var observerMethods = map[string]bool{
	"OnAccess":     true,
	"OnEviction":   true,
	"OnAdjustment": true,
	"OnEpochClose": true,
}

// windowOps are the rma.Window data and synchronization operations; a
// call through any interface named Window may block on the transport.
var windowOps = map[string]bool{
	"Get": true, "Put": true, "Rget": true, "Rput": true,
	"Accumulate": true, "GetBatch": true, "Flush": true, "FlushAll": true,
	"Checksum": true, "Fence": true,
	"Lock": true, "LockWithType": true, "LockAll": true,
	"Unlock": true, "UnlockAll": true,
}

// Trace computes the function's lexical event trace: classified lock
// acquisitions and releases, resolved calls, and direct blocking
// operations, in source order. Events under a defer statement are
// flagged Deferred; events under a go statement belong to another
// goroutine — which does not inherit the caller's held set — and are
// omitted entirely (caveat: lock-order violations wholly inside a
// spawned closure are not seen).
func (e *Engine) Trace(info *types.Info, decl *ast.FuncDecl) []Event {
	if decl.Body == nil {
		return nil
	}
	assigns := collectAssigns(info, decl.Body)
	var events []Event
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok && !underGo(stack) {
			if ev, ok := e.callEvent(info, assigns, call, stack); ok {
				events = append(events, ev)
			}
		}
		stack = append(stack, n)
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].Pos < events[j].Pos })
	return events
}

// callEvent classifies one call expression into at most one event.
func (e *Engine) callEvent(info *types.Info, assigns map[types.Object]ast.Expr, call *ast.CallExpr, stack []ast.Node) (Event, bool) {
	ev := Event{Pos: call.Pos(), Deferred: underDefer(stack)}
	fun := call.Fun
	// Unwrap explicit generic instantiation: f[T](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	switch fn := fun.(type) {
	case *ast.SelectorExpr:
		obj, _ := info.Uses[fn.Sel].(*types.Func)
		if obj == nil {
			return Event{}, false
		}
		if isMutexMethod(obj) {
			class, ok := e.classifyLock(info, assigns, fn.X, 4)
			if !ok {
				return Event{}, false
			}
			ev.Class = class
			switch obj.Name() {
			case "Lock", "RLock":
				ev.Kind = EvAcquire
				if ix, ok := fn.X.(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.Index]; ok && tv.Value != nil {
						if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
							ev.Index, ev.HasIndex = v, true
						}
					}
				}
				if class == LockStripe {
					switch loopDirection(stack) {
					case -1:
						ev.Descending = true
					case +1:
						ev.Ascending = true
					}
				}
			default:
				ev.Kind = EvRelease
			}
			return ev, true
		}
		return e.funcEvent(ev, obj)
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			return e.funcEvent(ev, obj)
		}
		// A call through a local holding a method value: f := s.helper; f().
		obj := objOf(info, fn)
		if obj == nil {
			return Event{}, false
		}
		src, ok := assigns[obj]
		if !ok {
			return Event{}, false
		}
		if sel, ok := src.(*ast.SelectorExpr); ok {
			if mfn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				return e.funcEvent(ev, mfn)
			}
		}
	}
	return Event{}, false
}

// funcEvent turns a resolved callee into a Block or Call event: direct
// blocking classification wins (a wire RPC's own lock effects are nil),
// then a call edge if the callee's body is in the Program.
func (e *Engine) funcEvent(ev Event, fn *types.Func) (Event, bool) {
	if why, ok := blockingWhy(fn); ok {
		ev.Kind, ev.Why = EvBlock, why
		return ev, true
	}
	if id := FuncID(fn); e.funcs[id] != nil {
		ev.Kind, ev.Callee = EvCall, id
		return ev, true
	}
	return Event{}, false
}

// blockingWhy classifies a method as a direct blocking operation.
func blockingWhy(fn *types.Func) (string, bool) {
	recv := typeutil.MethodReceiver(fn)
	if recv == nil {
		return "", false
	}
	name := fn.Name()
	if name == "RPC" || name == "rpc" {
		return "wire round-trip " + name, true
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if observerMethods[name] {
		if _, ok := recv.Underlying().(*types.Interface); ok {
			return "Observer callback " + name, true
		}
	}
	if windowOps[name] {
		if n, ok := recv.(*types.Named); ok && n.Obj() != nil && n.Obj().Name() == "Window" {
			if _, ok := recv.Underlying().(*types.Interface); ok {
				return "Window data op " + name, true
			}
		}
	}
	return "", false
}

// isMutexMethod reports whether obj is (R)Lock/(R)Unlock on a
// sync.Mutex or sync.RWMutex receiver.
func isMutexMethod(obj *types.Func) bool {
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	recv := typeutil.MethodReceiver(obj)
	return typeutil.IsNamed(recv, "sync", "Mutex") || typeutil.IsNamed(recv, "sync", "RWMutex")
}

// classifyLock resolves a lock receiver expression to its annotated
// class: it strips parens, derefs, and index chains down to the
// selected field, and follows single-assignment locals up to depth
// steps (locks := w.stripes[t]; locks[s].Lock()).
func (e *Engine) classifyLock(info *types.Info, assigns map[types.Object]ast.Expr, expr ast.Expr, depth int) (LockClass, bool) {
	if depth == 0 {
		return "", false
	}
	switch x := expr.(type) {
	case *ast.ParenExpr:
		return e.classifyLock(info, assigns, x.X, depth)
	case *ast.StarExpr:
		return e.classifyLock(info, assigns, x.X, depth)
	case *ast.IndexExpr:
		return e.classifyLock(info, assigns, x.X, depth)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return e.classifyLock(info, assigns, x.X, depth)
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil {
			if class, ok := e.locks[obj]; ok {
				return class, true
			}
		}
	case *ast.Ident:
		obj := objOf(info, x)
		if obj == nil {
			return "", false
		}
		if class, ok := e.locks[obj]; ok {
			return class, true
		}
		if src, ok := assigns[obj]; ok {
			return e.classifyLock(info, assigns, src, depth-1)
		}
	}
	return "", false
}

// collectAssigns gathers the single-assignment locals of a body: an
// identifier assigned exactly once maps to its source expression;
// reassignment or multi-value assignment kills the binding.
func collectAssigns(info *types.Info, body *ast.BlockStmt) map[types.Object]ast.Expr {
	assigns := make(map[types.Object]ast.Expr)
	dead := make(map[types.Object]bool)
	kill := func(id *ast.Ident) {
		if obj := objOf(info, id); obj != nil {
			dead[obj] = true
			delete(assigns, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(st.Lhs) != len(st.Rhs) {
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					kill(id)
				}
			}
			return true
		}
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(info, id)
			if obj == nil {
				continue
			}
			if _, seen := assigns[obj]; seen || dead[obj] {
				kill(id)
				continue
			}
			assigns[obj] = st.Rhs[i]
		}
		return true
	})
	return assigns
}

// objOf resolves an identifier to its object, use or definition.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// underDefer reports whether the node whose ancestor stack is given
// executes at function exit (inside a defer statement or a closure
// deferred by one).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// underGo reports whether the node runs on a spawned goroutine.
func underGo(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// loopDirection reports how the nearest enclosing for loop steps its
// variable: -1 for downward (i--, i -= k; a stripe acquisition there
// inverts the ascending order by construction), +1 for upward (i++,
// i += k; the sanctioned lockRange shape), 0 for no loop or an
// unclassifiable post statement.
func loopDirection(stack []ast.Node) int {
	for i := len(stack) - 1; i >= 0; i-- {
		loop, ok := stack[i].(*ast.ForStmt)
		if !ok {
			continue
		}
		switch post := loop.Post.(type) {
		case *ast.IncDecStmt:
			if post.Tok == token.DEC {
				return -1
			}
			return +1
		case *ast.AssignStmt:
			switch post.Tok {
			case token.SUB_ASSIGN:
				return -1
			case token.ADD_ASSIGN:
				return +1
			}
		}
		return 0
	}
	return 0
}
