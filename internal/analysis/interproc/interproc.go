// Package interproc is the summary-based interprocedural engine under
// the clampi-vet analyzers (DESIGN.md §14). The six original analyzers
// are function-local lexical scans; they cannot see a mutex acquired in
// a caller or a helper that blocks. interproc closes that gap for the
// lock-discipline family:
//
//   - It builds a call graph over every package loaded in one analysis
//     run (the analysis.Program): direct calls, method calls — generic
//     instantiations included — and single-assignment method values.
//   - For every function with a body it computes a lock-set summary:
//     which lock classes the function may acquire at any point during
//     its execution (During), the net effect it leaves on the caller's
//     held set (NetAcquire/NetRelease, defer-aware), and whether it may
//     perform a blocking operation (a wire round-trip, an rma.Window
//     data op, or a core.Observer callback), each propagated bottom-up
//     through the call graph.
//
// Lock classes come from the // clampi:lockrank <class> field
// annotation on mutex (or stripe-slice) struct fields — the same
// comment-annotation idiom as clampi:atomic and clampi:seqlock — plus
// local dataflow that traces an expression like locks[s].Lock() back
// through single-assignment locals and index chains to the annotated
// field. The DESIGN.md §12/§13 hierarchy names three classes:
//
//	fill    a core shard's fill mutex (taken first, at most one)
//	cuckoo  a cuckoo shard's writer mutex / seqlock write section
//	stripe  a per-(target, range) data-path RWMutex stripe
//
// Soundness model (deliberately the same strength as the lexical
// analyzers, extended across calls): the analysis is flow-insensitive
// over branches — events are folded in source order, so a conditional
// release counts as a release for everything lexically after it — and
// the recursion cut returns an empty summary for a cycle's in-progress
// member, so effects that only accumulate around a recursion cycle are
// not seen. Calls through unknown callees (function-typed fields,
// parameters, out-of-Program packages) contribute no effect. Events
// inside deferred calls and deferred closures apply their net effect at
// function exit and are exempt from in-order reporting. These are
// documented caveats, not accidents: the sanctioned locking shapes are
// all lexically bracketed, and anything cleverer deserves a reviewer.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clampi/internal/analysis"
)

// LockClass is one level of the DESIGN.md §12/§13 lock hierarchy.
type LockClass string

// The hierarchy's classes, in acquisition order.
const (
	LockFill   LockClass = "fill"
	LockCuckoo LockClass = "cuckoo"
	LockStripe LockClass = "stripe"
)

// RankMarker is the field annotation binding a mutex field to a lock
// class, e.g. `mu sync.Mutex // clampi:lockrank fill`.
const RankMarker = "clampi:lockrank"

// Summary is one function's interprocedural lock-set summary.
type Summary struct {
	// During holds every class the function may acquire at some point
	// during its execution, transitively through its callees.
	During map[LockClass]bool
	// NetAcquire counts locks still held when the function returns
	// (a Lock helper); NetRelease counts locks the function releases on
	// behalf of its caller (an Unlock helper). Deferred releases are
	// folded in, so a begin/defer-end bracket nets to zero.
	NetAcquire map[LockClass]int
	NetRelease map[LockClass]int
	// Blocking reports that the function may perform a blocking
	// operation: a wire round-trip, an rma.Window data op, or an
	// Observer callback. BlockingWhy names the first one found.
	Blocking    bool
	BlockingWhy string
}

// clone-free accessors keep callers from mutating the memoized maps.

// AcquiresDuring reports whether the function may acquire class c.
func (s *Summary) AcquiresDuring(c LockClass) bool { return s != nil && s.During[c] }

// EventKind discriminates trace events.
type EventKind int

// Trace event kinds, in the order the fold cares about them.
const (
	EvAcquire EventKind = iota // a classified Lock/RLock
	EvRelease                  // a classified Unlock/RUnlock
	EvCall                     // a call to a function with a known summary
	EvBlock                    // a direct blocking operation
)

// Event is one entry of a function's lexical lock trace.
type Event struct {
	Kind   EventKind
	Class  LockClass // EvAcquire/EvRelease
	Callee string    // EvCall: the callee's FuncID
	Pos    token.Pos
	Why    string // EvBlock: what blocks ("wire round-trip", ...)
	// Index carries a constant stripe index when the acquired lock is
	// an indexed stripe with a compile-time index (HasIndex true) —
	// what lets two lexically ordered constant acquisitions prove they
	// follow the ascending total order.
	Index    int64
	HasIndex bool
	// Deferred marks events inside a defer statement (including inside
	// a deferred closure): their net effect applies at function exit.
	Deferred bool
	// Descending marks a stripe acquisition inside a for loop whose
	// post statement steps downward — a direct inversion of the
	// ascending stripe order. Ascending marks the dual: the nearest
	// enclosing loop provably steps upward, which is the sanctioned
	// lockRange pattern (each iteration acquires a higher stripe).
	Descending bool
	Ascending  bool
}

// funcInfo binds a declaration to the package whose type info covers it.
type funcInfo struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

// Engine holds the program-wide tables: the call graph, the annotated
// lock fields, and the memoized summaries. Build once per Program via
// For; Run is sequential so no locking is needed.
type Engine struct {
	funcs      map[string]*funcInfo
	locks      map[types.Object]LockClass
	summaries  map[string]*Summary
	inProgress map[string]bool
	callees    map[string][]string
}

// cacheKey keys the engine in Program.Cache.
type cacheKey struct{}

// For returns the engine for the pass's Program, building it on first
// use and sharing it across every per-package pass of the run.
func For(pass *analysis.Pass) *Engine {
	prog := pass.Prog
	if prog == nil {
		// A hand-built pass (no Program): analyze the one package.
		prog = analysis.NewProgram([]*analysis.Package{{
			Fset:  pass.Fset,
			Files: pass.Files,
			Types: pass.Pkg,
			Info:  pass.TypesInfo,
		}})
	}
	if e, ok := prog.Cache[cacheKey{}].(*Engine); ok {
		return e
	}
	e := build(prog)
	prog.Cache[cacheKey{}] = e
	return e
}

// build indexes every loaded package: function declarations by FuncID
// and annotated lock fields by object.
func build(prog *analysis.Program) *Engine {
	e := &Engine{
		funcs:      make(map[string]*funcInfo),
		locks:      make(map[types.Object]LockClass),
		summaries:  make(map[string]*Summary),
		inProgress: make(map[string]bool),
		callees:    make(map[string][]string),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				e.funcs[FuncID(fn)] = &funcInfo{pkg: pkg, decl: fd}
			}
			collectLockRanks(pkg.Info, file, e.locks)
		}
	}
	return e
}

// collectLockRanks records the lock class of every field carrying a
// // clampi:lockrank <class> doc or trailing comment.
func collectLockRanks(info *types.Info, file *ast.File, out map[types.Object]LockClass) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			class, ok := rankOf(field.Doc)
			if !ok {
				class, ok = rankOf(field.Comment)
			}
			if !ok {
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = class
				}
			}
		}
		return true
	})
}

// rankOf extracts the class of a clampi:lockrank comment group.
func rankOf(g *ast.CommentGroup) (LockClass, bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		text := c.Text
		i := strings.Index(text, RankMarker)
		if i < 0 {
			continue
		}
		rest := strings.Fields(text[i+len(RankMarker):])
		if len(rest) > 0 {
			return LockClass(rest[0]), true
		}
	}
	return "", false
}

// FuncID returns the stable, cross-package identity of a function:
// "path.Name" for package functions, "path.(Recv).Name" for methods.
// Identity is by string (not object) because the loader type-checks
// each top-level package independently — the same function reached
// through an import and through its own load are distinct objects.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj() != nil {
			return path + ".(" + n.Obj().Name() + ")." + fn.Name()
		}
		return path + ".(?)." + fn.Name()
	}
	return path + "." + fn.Name()
}

// Functions returns every FuncID with a body in the Program, sorted.
func (e *Engine) Functions() []string {
	out := make([]string, 0, len(e.funcs))
	for id := range e.funcs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Callees returns the resolved callees of one function, sorted and
// deduplicated — the call graph's adjacency list. Summaries drive the
// traversal, so the edges exist after Summary(id) has run; callers that
// only want the graph should call Summary first (it is memoized).
func (e *Engine) Callees(id string) []string {
	_ = e.Summary(id)
	out := append([]string(nil), e.callees[id]...)
	sort.Strings(out)
	return dedupe(out)
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Summary returns the memoized lock-set summary of one function,
// computing it (and its callees', bottom-up) on first use. Unknown
// functions summarize to the empty effect. A recursion cycle is cut by
// handing the in-progress member an empty summary — effects that only
// accumulate around the cycle are not observed (documented caveat).
func (e *Engine) Summary(id string) *Summary {
	if s, ok := e.summaries[id]; ok {
		return s
	}
	if e.inProgress[id] {
		return &Summary{}
	}
	fi := e.funcs[id]
	if fi == nil || fi.decl.Body == nil {
		s := newSummary()
		e.summaries[id] = s
		return s
	}
	e.inProgress[id] = true
	events := e.Trace(fi.pkg.Info, fi.decl)
	s := newSummary()
	held := make(map[LockClass]int)
	var deferred []Event
	var callees []string
	apply := func(ev Event) {
		switch ev.Kind {
		case EvAcquire:
			held[ev.Class]++
			s.During[ev.Class] = true
		case EvRelease:
			held[ev.Class]--
		case EvCall:
			cs := e.Summary(ev.Callee)
			for c := range cs.During {
				s.During[c] = true
			}
			if cs.Blocking && !s.Blocking {
				s.Blocking = true
				s.BlockingWhy = cs.BlockingWhy
			}
			for c, n := range cs.NetAcquire {
				held[c] += n
				s.During[c] = true
			}
			for c, n := range cs.NetRelease {
				held[c] -= n
			}
		case EvBlock:
			if !s.Blocking {
				s.Blocking = true
				s.BlockingWhy = ev.Why
			}
		}
	}
	for _, ev := range events {
		if ev.Kind == EvCall {
			callees = append(callees, ev.Callee)
		}
		if ev.Deferred {
			deferred = append(deferred, ev)
			continue
		}
		apply(ev)
	}
	for _, ev := range deferred {
		apply(ev)
	}
	for c, n := range held {
		if n > 0 {
			s.NetAcquire[c] = n
		} else if n < 0 {
			s.NetRelease[c] = -n
		}
	}
	delete(e.inProgress, id)
	e.summaries[id] = s
	e.callees[id] = callees
	return s
}

func newSummary() *Summary {
	return &Summary{
		During:     make(map[LockClass]bool),
		NetAcquire: make(map[LockClass]int),
		NetRelease: make(map[LockClass]int),
	}
}
