// Package ip is the interproc engine corpus: a small call landscape
// with direct calls, method calls, a method value, a mutual-recursion
// cycle and defer-released locks, against which the engine's call
// graph and golden lock-set summaries are asserted.
package ip

import "sync"

type S struct {
	mu sync.Mutex // clampi:lockrank fill
}

type W struct {
	mu sync.Mutex // clampi:lockrank cuckoo
}

type client struct{}

func (c *client) RPC(op byte) error { return nil }

// lockFill returns with the fill mutex held: net acquire.
func (s *S) lockFill() { s.mu.Lock() }

// unlockFill releases on the caller's behalf: net release.
func (s *S) unlockFill() { s.mu.Unlock() }

// withLock brackets with defer: During fill, net zero.
func withLock(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// viaHelper only calls: its summary inherits withLock's During set.
func viaHelper(s *S) {
	withLock(s)
}

// methodValue calls lockFill through a single-assignment local.
func methodValue(s *S) {
	f := s.lockFill
	f()
	s.mu.Unlock()
}

// even/odd form a recursion cycle; even acquires the cuckoo lock
// before recursing. The engine cuts the cycle at the in-progress
// member, so even's During is seen but odd's view of even is empty —
// the documented recursion caveat.
func even(w *W, n int) {
	w.mu.Lock()
	w.mu.Unlock()
	if n > 0 {
		odd(w, n-1)
	}
}

func odd(w *W, n int) {
	if n > 0 {
		even(w, n-1)
	}
}

// callsBlocked performs a wire round-trip: Blocking propagates.
func callsBlocked(c *client) error { return c.RPC(1) }

// blockedViaHelper inherits Blocking from callsBlocked.
func blockedViaHelper(c *client) error { return callsBlocked(c) }
