package sentinelerr_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sentinelerr.Analyzer, "sentinel")
}

// TestTreeHonoursErrorsIsContract proves no live code compares module
// sentinels directly or wraps errors without %w.
func TestTreeHonoursErrorsIsContract(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole tree; skipped in -short")
	}
	analysistest.RunClean(t, "../../..", sentinelerr.Analyzer, "./...")
}
