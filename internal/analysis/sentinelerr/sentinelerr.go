// Package sentinelerr enforces the errors.Is contract of the module's
// sentinel errors (established when the typed sentinels were
// introduced; see internal/rma's error block): the finer-grained
// sentinels wrap umbrella sentinels with %w (rma.ErrBounds matches
// rma.ErrOutOfRange), so
//
//  1. comparing an error to a module sentinel with == or != (or
//     switching on error values) misses wrapped matches — use
//     errors.Is; and
//  2. wrapping an error with fmt.Errorf using %v/%s instead of %w
//     severs the chain for every caller downstream.
//
// Only sentinels defined inside this module (import path prefix
// "clampi") trigger the comparison rule: comparisons against stdlib
// values such as io.EOF, which are documented to be returned unwrapped,
// stay legal. The %w rule applies to any error-typed argument of
// fmt.Errorf.
package sentinelerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer flags sentinel comparisons and non-%w wrapping.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "err == ErrX comparisons and fmt.Errorf wrapping without %w break the errors.Is contract",
	Run:  run,
}

// ModulePrefix scopes the comparison rule to sentinels defined in this
// module.
const ModulePrefix = "clampi"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	s := sentinelOf(pass.TypesInfo, e.X)
	if s == nil {
		s = sentinelOf(pass.TypesInfo, e.Y)
	}
	if s == nil {
		return
	}
	pass.Reportf(e.OpPos, "error compared to sentinel %s with %s: use errors.Is, which also matches the finer-grained sentinels wrapping it", s.Name(), e.Op)
}

func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[s.Tag]
	if !ok || !typeutil.ImplementsError(tv.Type) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if sent := sentinelOf(pass.TypesInfo, expr); sent != nil {
				pass.Reportf(expr.Pos(), "switch compares errors to sentinel %s with ==: use an errors.Is chain instead", sent.Name())
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that format an error argument
// without any %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !typeutil.PkgFuncCall(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		atv, ok := pass.TypesInfo.Types[arg]
		if ok && typeutil.ImplementsError(atv.Type) {
			pass.Reportf(arg.Pos(), "error wrapped by fmt.Errorf without %%w: errors.Is/errors.As callers downstream will not match the sentinel")
			return
		}
	}
}

// sentinelOf returns the module sentinel-error variable e denotes, if
// any: a package-level var named Err* of error type, defined in a
// package of this module.
func sentinelOf(info *types.Info, e ast.Expr) *types.Var {
	obj := typeutil.ObjectOf(info, e)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	path := v.Pkg().Path()
	if path != ModulePrefix && !strings.HasPrefix(path, ModulePrefix+"/") {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !typeutil.ImplementsError(v.Type()) {
		return nil
	}
	return v
}
