// Corpus for sentinelerr: direct sentinel comparisons and non-%w
// wrapping. The sentinels come from the real internal/rma package, so
// the corpus exercises exactly the values the rule protects.
package sentinel

import (
	"errors"
	"fmt"
	"io"

	"clampi/internal/rma"
)

// directComparisons match only the unwrapped value: rma.ErrBounds wraps
// rma.ErrOutOfRange, so == misses it.
func directComparisons(err error) bool {
	if err == rma.ErrOutOfRange { // want `error compared to sentinel ErrOutOfRange with ==`
		return true
	}
	return err != rma.ErrFreed // want `error compared to sentinel ErrFreed with !=`
}

// errorsIsChain is the sanctioned pattern.
func errorsIsChain(err error) bool {
	return errors.Is(err, rma.ErrOutOfRange) || errors.Is(err, rma.ErrFreed)
}

// switchOnSentinels hides the same == behind a switch.
func switchOnSentinels(err error) string {
	switch err {
	case rma.ErrNoEpoch: // want `switch compares errors to sentinel ErrNoEpoch with ==`
		return "no epoch"
	case nil:
		return "ok"
	}
	return "other"
}

// stdlibSentinelsStayLegal: io.EOF is documented to be returned
// unwrapped; the rule binds module sentinels only.
func stdlibSentinelsStayLegal(err error) bool {
	return err == io.EOF
}

// nilComparisonStaysLegal: nil is not a sentinel.
func nilComparisonStaysLegal(err error) bool {
	return err != nil
}

// wrapWithoutW severs the errors.Is chain.
func wrapWithoutW(err error) error {
	return fmt.Errorf("fetch failed: %v", err) // want `error wrapped by fmt.Errorf without %w`
}

// wrapWithW keeps the chain intact.
func wrapWithW(err error) error {
	return fmt.Errorf("fetch failed: %w", err)
}

// nonErrorArgsAreFine: formatting values is not wrapping.
func nonErrorArgsAreFine(rank int) error {
	return fmt.Errorf("rank %d out of range", rank)
}

// transientDirectComparison: the transient family is always delivered
// wrapped (ErrTimeout wraps ErrTransient, injectors wrap both), so ==
// can never match a real failure — retry loops written this way spin on
// nothing or give up on everything.
func transientDirectComparison(err error) bool {
	return err == rma.ErrTransient // want `error compared to sentinel ErrTransient with ==`
}

// transientSwitch hides the same mistake behind a retry-dispatch switch.
func transientSwitch(err error) string {
	switch err {
	case rma.ErrTimeout: // want `switch compares errors to sentinel ErrTimeout with ==`
		return "timeout"
	case rma.ErrCorrupt: // want `switch compares errors to sentinel ErrCorrupt with ==`
		return "corrupt"
	}
	return "other"
}

// transientErrorsIsChain is the sanctioned retry-loop classification:
// errors.Is sees through every wrap layer.
func transientErrorsIsChain(err error) bool {
	if !errors.Is(err, rma.ErrTransient) {
		return false // permanent: do not retry
	}
	return !errors.Is(err, rma.ErrTimeout) || !errors.Is(err, rma.ErrCorrupt)
}

// transientWrapWithW: adding attempt context keeps the family matchable.
func transientWrapWithW(attempt int, err error) error {
	return fmt.Errorf("attempt %d: %w", attempt, err)
}
