// Package suite registers the clampi-vet analyzers. cmd/clampi-vet and
// the integration tests consume the suite through All so the set is
// defined in exactly one place.
package suite

import (
	"clampi/internal/analysis"
	"clampi/internal/analysis/atomicfield"
	"clampi/internal/analysis/epochcheck"
	"clampi/internal/analysis/lockorder"
	"clampi/internal/analysis/observerlock"
	"clampi/internal/analysis/sentinelerr"
	"clampi/internal/analysis/seqlockcheck"
	"clampi/internal/analysis/simclock"
	"clampi/internal/analysis/wireproto"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		epochcheck.Analyzer,
		simclock.Analyzer,
		sentinelerr.Analyzer,
		atomicfield.Analyzer,
		observerlock.Analyzer,
		seqlockcheck.Analyzer,
		lockorder.Analyzer,
		wireproto.Analyzer,
	}
}
