package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveLines collects, per file, the source lines carrying a line
// directive: a comment whose text begins with marker immediately after
// the "//" (a trailing reason is allowed and encouraged). Analyzers use
// it for escape hatches that exempt a single access site, e.g.
//
//	s.rng = newRNG(seed) //clampi:seqlock construction: not yet published
//
// The prefix requirement keeps prose that merely mentions the marker —
// doc comments, test expectations — from acting as a directive.
func DirectiveLines(fset *token.FileSet, files []*ast.File, marker string) map[string]map[int]bool {
	lines := make(map[string]map[int]bool)
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, marker) {
					continue
				}
				p := fset.Position(c.Pos())
				m := lines[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					lines[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	return lines
}
