// Package analysis is a minimal, self-contained reimplementation of the
// core surface of golang.org/x/tools/go/analysis, built only on the
// standard library so the repository carries no external dependencies.
//
// It exists to host clampi-vet (cmd/clampi-vet): a suite of project
// analyzers that enforce invariants the Go type system cannot see — the
// weak-consistency epoch contract of internal/rma (epochcheck), the
// virtual-time discipline of internal/simtime (simclock), the errors.Is
// wrapping contract of the package sentinels (sentinelerr), atomic-only
// field access in internal/obsv (atomicfield), the lock-free observer
// hot path (observerlock), and the write-section discipline of the
// seqlock-published sharded index (seqlockcheck).
//
// The shape mirrors go/analysis deliberately — an Analyzer holds a Run
// function over a Pass carrying the package's syntax and type
// information — so the suite can be ported to the real framework
// verbatim if x/tools ever becomes a dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one invariant checker. Name appears in diagnostics and
// in cmd/clampi-vet's -only flag; Doc states the invariant enforced and
// where it comes from (paper section or DESIGN.md section).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to an Analyzer: parsed files, the
// type-checked package object, and full type information. Run reports
// findings through Reportf. Prog is the whole-run view: every package
// loaded alongside this one, for analyzers whose invariants span
// function and package boundaries (interprocedural summaries).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	diags *[]Diagnostic
}

// A Program is the set of packages one Run call analyzes together. It
// is the unit of interprocedural visibility: a call into a package of
// the same Program resolves to that package's syntax (and therefore to
// a computed summary); a call anywhere else is an unknown callee that
// analyzers must treat conservatively.
//
// Cache lets expensive whole-program artifacts (call graphs, summary
// tables) be computed once and shared across the per-package passes of
// one Run. Keys follow the context.Context convention: each client
// package owns an unexported key type. Run is sequential, so no
// locking is needed.
type Program struct {
	Packages []*Package
	Cache    map[any]any
}

// NewProgram wraps packages for analysis as one interprocedural unit.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Packages: pkgs, Cache: make(map[any]any)}
}

// A Diagnostic is one finding: a position, the analyzer that produced
// it, and a message stating the violated invariant.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in file/line order. All packages must come from the same
// Loader (they share its FileSet).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if fset != nil {
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return diags, nil
}

// InspectWithStack walks the files in source order, invoking f for every
// node with the stack of enclosing nodes (outermost first, innermost —
// the node's parent — last). Analyzers use it where a node's legality
// depends on its context, e.g. &s.f as an argument to atomic.AddUint64.
func InspectWithStack(files []*ast.File, f func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			f(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}
