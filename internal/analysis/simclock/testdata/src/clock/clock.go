// Corpus for simclock: wall-clock sampling outside the simtime
// allowlist.
package clock

import "time"

// sampleWallClock reads and consumes the wall clock four ways.
func sampleWallClock() time.Duration {
	start := time.Now()           // want `wall-clock time\.Now breaks virtual-time determinism`
	time.Sleep(time.Millisecond)  // want `wall-clock time\.Sleep breaks virtual-time determinism`
	<-time.After(time.Nanosecond) // want `wall-clock time\.After breaks virtual-time determinism`
	return time.Since(start)      // want `wall-clock time\.Since breaks virtual-time determinism`
}

// durationsAreFine: the time package's types and constants carry no
// wall-clock dependency.
func durationsAreFine() time.Duration {
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}

// annotatedEscapeHatch is the sanctioned override for genuinely
// wall-clock needs, stated with a reason.
func annotatedEscapeHatch() time.Time {
	return time.Now() //clampi:walltime CLI progress timestamps are wall-clock by definition
}

// wallClockBackoff is the retry-loop mistake the resilience layer must
// never make: sleeping real time between attempts desynchronizes the
// virtual clocks and makes chaos runs irreproducible. Backoffs must
// advance the rank's simtime.Clock instead.
func wallClockBackoff(attempt int) {
	d := time.Duration(attempt) * time.Millisecond
	time.Sleep(d) // want `wall-clock time\.Sleep breaks virtual-time determinism`
}

// deadlineByWallClock: bounding retries with the wall clock is the same
// mistake in a different spot.
func deadlineByWallClock(start time.Time) bool {
	return time.Since(start) > time.Second // want `wall-clock time\.Since breaks virtual-time determinism`
}

// hatchIsPerLine: a //clampi:walltime annotation suppresses exactly the
// line it sits on — it never blesses the surrounding function. The wire
// transport leans on this: its wall-measured RPC timing is annotated
// call by call, and any unannotated sample added next to it still trips
// the analyzer.
func hatchIsPerLine() time.Duration {
	start := time.Now()             //clampi:walltime wire RPC latency is charged to the virtual clock from wall measurements
	t := time.NewTimer(time.Second) //clampi:walltime socket deadline watchdog
	defer t.Stop()
	return time.Since(start) // want `wall-clock time\.Since breaks virtual-time determinism`
}
