package simclock_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/simclock"
)

func TestSimClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), simclock.Analyzer, "clock")
}

// TestSimtimeIsAllowlisted proves the one sanctioned wall-clock bridge
// — internal/simtime's Clock.Charge calibration (time.Now/time.Since)
// and its calibration test (time.Sleep) — reports no diagnostics.
func TestSimtimeIsAllowlisted(t *testing.T) {
	analysistest.RunClean(t, "../../..", simclock.Analyzer, "./internal/simtime")
}

// TestWholeTreeIsVirtualTime proves no package outside the allowlist
// samples the wall clock: determinism (and with it resumable,
// reproducible experiments) holds tree-wide.
func TestWholeTreeIsVirtualTime(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole tree; skipped in -short")
	}
	analysistest.RunClean(t, "../../..", simclock.Analyzer, "./...")
}
