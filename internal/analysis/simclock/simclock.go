// Package simclock enforces the virtual-time discipline of the
// reproduction (DESIGN.md §2): all latency accounting flows through
// internal/simtime, so results are deterministic and runs are
// resumable. Wall-clock sampling anywhere else silently couples results
// to host speed and scheduling.
//
// The analyzer forbids the clock-reading and sleeping functions of the
// time package everywhere except the allowlist: internal/simtime itself
// (its Clock.Charge calibrates virtual time against the real monotonic
// clock — that is the one sanctioned bridge) and lines carrying a
// //clampi:walltime comment with a reason, the escape hatch for
// genuinely wall-clock needs such as CLI progress reporting.
// time.Duration and the time constants remain available everywhere;
// only sampling the wall clock is restricted.
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"clampi/internal/analysis"
)

// Analyzer flags wall-clock use outside the allowlist.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "wall-clock time.Now/Since/Sleep outside internal/simtime breaks virtual-time determinism",
	Run:  run,
}

// AllowedPackages are the import paths (test variants included) where
// wall-clock sampling is sanctioned.
var AllowedPackages = []string{
	"clampi/internal/simtime",
}

// banned are the time-package functions that sample or consume the wall
// clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Directive suppresses one line, stated with a reason:
// //clampi:walltime <why this must be wall time>
const Directive = "clampi:walltime"

func run(pass *analysis.Pass) error {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, allowed := range AllowedPackages {
		if path == allowed {
			return nil
		}
	}
	for _, file := range pass.Files {
		suppressed := suppressedLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" || !banned[sel.Sel.Name] {
				return true
			}
			if suppressed[pass.Fset.Position(sel.Pos()).Line] {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s breaks virtual-time determinism: route latency through internal/simtime (Clock.Advance/Busy/Charge), or annotate the line with //%s <reason>", sel.Sel.Name, Directive)
			return true
		})
	}
	return nil
}

// suppressedLines collects the lines of file carrying the directive.
func suppressedLines(pass *analysis.Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if strings.Contains(c.Text, Directive) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
