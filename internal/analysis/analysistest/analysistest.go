// Package analysistest runs an analyzer over a testdata corpus and
// checks its diagnostics against expectations written in the corpus
// itself — the same convention as golang.org/x/tools/go/analysis/
// analysistest, reimplemented on the stdlib-only framework.
//
// Expectations are trailing comments of the form
//
//	expr // want "regexp"
//	expr // want "first" `second`
//
// Every diagnostic must match an expectation on its line, and every
// expectation must be matched by a diagnostic; anything else fails the
// test. Corpus packages live under testdata/src/<name>/ and may import
// real module packages (clampi/internal/...), which the loader resolves
// from source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clampi/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads testdata/src/<pkg> for each named corpus package, applies
// the analyzer, and verifies its diagnostics against the // want
// expectations in the corpus sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		checkExpectations(t, pkg, diags)
	}
}

// RunClean loads the real module package at importPath (patterns are
// resolved relative to dir) and asserts the analyzer reports nothing —
// the harness for negative cases over live code, e.g. proving
// internal/simtime's own time.Now calibration use is allowlisted.
func RunClean(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s: %s: %s", loader.Fset().Position(d.Pos), d.Analyzer, d.Message)
	}
}

// expectation is one // want clause: a pattern awaiting a diagnostic on
// its line.
type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects := collectExpectations(t, pkg)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchExpectation(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", e.pos, e.re)
		}
	}
}

func matchExpectation(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.matched || e.pos.Filename != pos.Filename || e.pos.Line != pos.Line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				out = append(out, parseWant(t, pkg.Fset, c)...)
			}
		}
	}
	return out
}

// parseWant extracts the expectations of one comment. The comment's
// line anchors them: `x // want "p"` expects a diagnostic on x's line.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var out []*expectation
	for rest != "" {
		lit, tail, err := scanStringLit(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, lit, err)
		}
		out = append(out, &expectation{pos: pos, re: re})
		rest = strings.TrimSpace(tail)
	}
	return out
}

// scanStringLit consumes one leading Go string literal (quoted or
// backquoted) and returns its value and the remainder.
func scanStringLit(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("expected string literal at %q", s)
	}
}
