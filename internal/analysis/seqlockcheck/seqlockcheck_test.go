package seqlockcheck_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/seqlockcheck"
)

func TestSeqlockCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), seqlockcheck.Analyzer, "seqlk")
}

// TestLiveTreeClean proves the sharded index and the concurrent cache
// obey the write-section discipline: every // clampi:seqlock field
// access sits inside a beginWrite/endWrite section and every readBegin
// snapshot is validated.
func TestLiveTreeClean(t *testing.T) {
	analysistest.RunClean(t, "../../..", seqlockcheck.Analyzer, "./internal/cuckoo", "./internal/core")
}
