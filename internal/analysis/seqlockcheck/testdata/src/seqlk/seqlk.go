// Corpus for seqlockcheck: write-section discipline for fields marked
// // clampi:seqlock and readBegin/readValid bracketing.
package seqlk

import "sync"

// shard models one seqlock-published segment: a writer mutex, a version
// word, writer-only bookkeeping (annotated), and published state.
type shard struct {
	mu  sync.Mutex
	seq uint64

	rng int   // clampi:seqlock — walk randomness, writer-only
	buf []int // clampi:seqlock — reusable walk scratch

	n int // published state: not annotated, plain access stays legal
}

func (s *shard) beginWrite() { s.mu.Lock(); s.seq++ }
func (s *shard) endWrite()   { s.seq++; s.mu.Unlock() }

func (s *shard) readBegin() (uint64, bool) { v := s.seq; return v, v&1 == 0 }
func (s *shard) readValid(v uint64) bool   { return s.seq == v }

// insideSection is the sanctioned writer shape: begin, touch, end.
func insideSection(s *shard) {
	s.beginWrite()
	s.rng++
	s.buf = append(s.buf, s.rng)
	s.endWrite()
}

// deferredEnd holds the write section open to function end.
func deferredEnd(s *shard) int {
	s.beginWrite()
	defer s.endWrite()
	s.rng += 3
	return s.rng
}

// outsideSection touches writer bookkeeping with no section open.
func outsideSection(s *shard) int {
	return s.rng // want `field rng is marked clampi:seqlock`
}

// afterEnd: the section closed lexically above the access.
func afterEnd(s *shard) {
	s.beginWrite()
	s.rng++
	s.endWrite()
	s.buf = nil // want `field buf is marked clampi:seqlock`
}

// beforeBegin: opening a section later does not sanction this line.
func beforeBegin(s *shard) {
	s.buf = s.buf[:0] // want `field buf is marked clampi:seqlock` `field buf is marked clampi:seqlock`
	s.beginWrite()
	s.rng++
	s.endWrite()
}

// escapeHatch: construction-time initialization before the shard is
// reachable by any reader, exempted by the line directive.
func escapeHatch(seed int) *shard {
	s := &shard{}
	s.rng = seed //clampi:seqlock construction: not yet published
	return s
}

// unvalidatedRead snapshots a version and never checks it.
func unvalidatedRead(s *shard) int {
	v, _ := s.readBegin() // want `readBegin snapshot is never validated`
	_ = v
	return s.n
}

// validatedRead is the sanctioned reader bracket.
func validatedRead(s *shard) int {
	for {
		v, even := s.readBegin()
		if !even {
			continue
		}
		n := s.n
		if s.readValid(v) {
			return n
		}
	}
}

// openInHelper opens the write section on the caller's behalf.
func openInHelper(s *shard) { s.beginWrite() }

// sectionFromHelper is dynamically sound — openInHelper returns with
// the write section open — but seqlockcheck is lexical and
// function-local, so it cannot see the helper's effect and flags the
// access anyway. This case documents that limitation: interprocedural
// section tracking belongs to the lockorder analyzer, whose
// interproc summaries model exactly this net-acquire helper shape
// (its corpus asserts the lock-held-across-call variants).
func sectionFromHelper(s *shard) {
	openInHelper(s)
	s.rng++ // want `field rng is marked clampi:seqlock`
	s.endWrite()
}

// unannotatedStaysLegal: only marked fields are constrained.
func unannotatedStaysLegal(s *shard) int {
	s.n++
	return s.n
}
