// Package seqlockcheck enforces the write-section discipline of the
// sharded, seqlock-published cuckoo index (DESIGN.md §12). The sharded
// index has two kinds of state the type system cannot tell apart:
//
//   - published state (slots, version, counters), accessed through
//     sync/atomic and already policed by the atomicfield analyzer, and
//   - writer-side bookkeeping (the displacement-walk RNG and similar),
//     which is plain memory that is only ever safe to touch while the
//     shard's write section is open — beginWrite taken, endWrite not
//     yet run — because the seqlock's odd version is what keeps every
//     other goroutine out.
//
// Fields of the second kind are annotated with a "// clampi:seqlock"
// field comment, and this analyzer checks, per function body and in
// lexical order:
//
//   - Write-section rule: every access to an annotated field must sit
//     between a beginWrite() call and the matching endWrite() call. A
//     deferred endWrite holds the section open to the end of the
//     function, mirroring the defer-aware lock tracking of
//     observerlock. An access that is provably needed outside a write
//     section (construction before the value is published, a test
//     harness) carries a "//clampi:seqlock <reason>" line directive as
//     an escape hatch.
//   - Read-validation rule: a readBegin() version snapshot is worthless
//     unless it is checked — each readBegin call must be followed by at
//     least one readValid call in the same function, otherwise the
//     bracketed reads may be torn and nothing would ever notice.
//
// Like observerlock, the analysis is lexical and function-local: it
// proves the code pattern, not the dynamic schedule. That is exactly
// the right strength for this invariant — the sanctioned shapes
// (begin/defer-end, begin…end, readBegin…readValid) are all lexically
// local, and anything cleverer deserves a human reviewer.
package seqlockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer flags writer-only seqlock state touched outside a write
// section and readBegin snapshots that are never validated.
var Analyzer = &analysis.Analyzer{
	Name: "seqlockcheck",
	Doc:  "// clampi:seqlock fields accessed only inside beginWrite/endWrite sections; readBegin snapshots validated by readValid",
	Run:  run,
}

// Marker is the field annotation; the same token doubles as the
// escape-hatch line directive ("//clampi:seqlock <reason>").
const Marker = "clampi:seqlock"

// The section and bracket methods, matched by name on any receiver:
// shard types are package-local, so an import-path check would tie the
// analyzer to one package instead of the discipline.
const (
	beginMethod     = "beginWrite"
	endMethod       = "endWrite"
	readBeginMethod = "readBegin"
	readValidMethod = "readValid"
)

func run(pass *analysis.Pass) error {
	annotated := collectAnnotated(pass)
	directives := analysis.DirectiveLines(pass.Fset, pass.Files, Marker)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body, annotated, directives)
			}
		}
	}
	return nil
}

type opKind int

const (
	opBegin opKind = iota
	opEnd
	opAccess
	opReadBegin
	opReadValid
)

type op struct {
	kind opKind
	pos  token.Pos
	name string
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, annotated map[types.Object]bool, directives map[string]map[int]bool) {
	info := pass.TypesInfo
	var ops []op
	deferred := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case isSectionMethod(info, sel, beginMethod) && !deferred[n]:
				ops = append(ops, op{kind: opBegin, pos: n.Pos()})
			case isSectionMethod(info, sel, endMethod):
				// A deferred endWrite closes at return: it never ends the
				// section for lexically later accesses.
				if !deferred[n] {
					ops = append(ops, op{kind: opEnd, pos: n.Pos()})
				}
			case isSectionMethod(info, sel, readBeginMethod):
				ops = append(ops, op{kind: opReadBegin, pos: n.Pos()})
			case isSectionMethod(info, sel, readValidMethod):
				ops = append(ops, op{kind: opReadValid, pos: n.Pos()})
			}
		case *ast.SelectorExpr:
			if obj := info.Uses[n.Sel]; obj != nil && annotated[obj] {
				ops = append(ops, op{kind: opAccess, pos: n.Sel.Pos(), name: n.Sel.Name})
			}
		}
		return true
	})

	sort.SliceStable(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

	held := 0
	var readBegins []token.Pos
	lastReadValid := token.NoPos
	for _, o := range ops {
		switch o.kind {
		case opBegin:
			held++
		case opEnd:
			if held > 0 {
				held--
			}
		case opAccess:
			if held > 0 {
				continue
			}
			p := pass.Fset.Position(o.pos)
			if directives[p.Filename][p.Line] {
				continue
			}
			pass.Reportf(o.pos, "field %s is marked %s: writer-only seqlock state — access it between beginWrite and endWrite, or carry a //%s <reason> directive", o.name, Marker, Marker)
		case opReadBegin:
			readBegins = append(readBegins, o.pos)
		case opReadValid:
			lastReadValid = o.pos
		}
	}
	for _, pos := range readBegins {
		if lastReadValid <= pos {
			pass.Reportf(pos, "readBegin snapshot is never validated: follow it with a readValid check (a torn read would go unnoticed)")
		}
	}
}

// isSectionMethod reports whether sel calls a method of the given name
// (section methods are matched by name; requiring a method receiver
// keeps free functions that happen to share the name out of scope).
func isSectionMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	return typeutil.MethodReceiver(info.Uses[sel.Sel]) != nil
}

// collectAnnotated maps the field objects of this package carrying the
// marker in their doc or trailing comment.
func collectAnnotated(pass *analysis.Pass) map[types.Object]bool {
	annotated := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc) && !hasMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						annotated[obj] = true
					}
				}
			}
			return true
		})
	}
	return annotated
}

func hasMarker(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.Contains(c.Text, Marker) {
			return true
		}
	}
	return false
}
