// Package typeutil holds the small type-inspection helpers shared by the
// clampi-vet analyzers.
package typeutil

import (
	"go/ast"
	"go/types"
)

// IsNamed reports whether t (after pointer indirection) is the named
// type path.name.
func IsNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// ErrorInterface returns the universe error interface.
func ErrorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// ImplementsError reports whether t satisfies the error interface.
func ImplementsError(t types.Type) bool {
	return t != nil && types.Implements(t, ErrorInterface())
}

// MethodReceiver returns the receiver type of the called method, or nil
// when obj is not a method.
func MethodReceiver(obj types.Object) types.Type {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	return recv.Type()
}

// PkgFuncCall reports whether call invokes the package-level function
// path.name (e.g. "sync/atomic".AddUint64).
func PkgFuncCall(info *types.Info, call *ast.CallExpr, path, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == path && (name == "" || fn.Name() == name)
}

// ObjectOf resolves the variable or field a receiver/operand expression
// denotes: the identifier's object for `w`, the field object for
// `c.win`. Returns nil for anything more complex.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return ObjectOf(info, e.X)
	}
	return nil
}
