// Corpus for observerlock: core.Observer notifications while a mutex is
// held.
package obslock

import (
	"sync"

	"clampi/internal/core"
)

// shard models a Throughput-mode shard: a mutex guarding state, plus an
// observer hook.
type shard struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	obs core.Observer
	n   int
}

// notifyUnderLock extends the critical section into user code.
func notifyUnderLock(s *shard, e core.AccessEvent) {
	s.mu.Lock()
	s.n++
	s.obs.OnAccess(e) // want `core\.Observer\.OnAccess called while a mutex is held`
	s.mu.Unlock()
}

// notifyUnderDeferredUnlock holds the lock to function end.
func notifyUnderDeferredUnlock(s *shard, e core.EvictionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.obs.OnEviction(e) // want `core\.Observer\.OnEviction called while a mutex is held`
}

// notifyUnderRLock: read locks extend the critical section too.
func notifyUnderRLock(s *shard, e core.EpochEvent) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.obs.OnEpochClose(e) // want `core\.Observer\.OnEpochClose called while a mutex is held`
}

// notifyAfterUnlock is the sanctioned pattern: snapshot under the lock,
// notify outside it.
func notifyAfterUnlock(s *shard, e core.AccessEvent) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.obs.OnAccess(e)
}

// notifyWithoutLock: the nil-check-only hot path.
func notifyWithoutLock(s *shard, e core.AccessEvent) {
	if s.obs != nil {
		s.obs.OnAccess(e)
	}
}

// seqshard models a seqlock-published segment: its beginWrite/endWrite
// bracket is a critical section for observers too — while the write
// section is open every concurrent reader of the shard is spinning.
type seqshard struct {
	seq uint64
	obs core.Observer
}

func (s *seqshard) beginWrite() { s.seq++ }
func (s *seqshard) endWrite()   { s.seq++ }

// notifyInsideWriteSection stalls the whole read side of the shard.
func notifyInsideWriteSection(s *seqshard, e core.AccessEvent) {
	s.beginWrite()
	s.obs.OnAccess(e) // want `core\.Observer\.OnAccess called while a mutex is held`
	s.endWrite()
}

// notifyUnderDeferredEndWrite holds the section to function end.
func notifyUnderDeferredEndWrite(s *seqshard, e core.EvictionEvent) {
	s.beginWrite()
	defer s.endWrite()
	s.obs.OnEviction(e) // want `core\.Observer\.OnEviction called while a mutex is held`
}

// notifyAfterWriteSection is the sanctioned shape: close the section,
// then notify.
func notifyAfterWriteSection(s *seqshard, e core.AccessEvent) {
	s.beginWrite()
	s.endWrite()
	s.obs.OnAccess(e)
}
