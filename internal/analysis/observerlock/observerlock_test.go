package observerlock_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/observerlock"
)

func TestObserverLock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), observerlock.Analyzer, "obslock")
}

// TestHotPathIsLockFree proves the live caching layer and the
// observability plumbing never notify an observer under a mutex.
func TestHotPathIsLockFree(t *testing.T) {
	analysistest.RunClean(t, "../../..", observerlock.Analyzer,
		"./internal/core", "./internal/obsv", "./internal/experiments")
}
