// Package observerlock enforces the lock-free observer hot path
// (DESIGN.md §8): core.Observer implementations run arbitrary user code
// synchronously on the rank goroutine, so notifying one while a mutex
// is held turns every metric update into a critical-section extension —
// a latency hazard in Throughput mode's per-target shard locks and a
// deadlock hazard if the observer re-enters the locking layer. The
// caching layer's contract is a nil-check-only dispatch outside any
// lock; this analyzer keeps it that way.
//
// The analysis is function-local and lexical: within one function body
// it tracks sync.Mutex/sync.RWMutex Lock/RLock and Unlock/RUnlock calls
// in source order (a deferred unlock holds the lock to function end)
// and flags any call through the core.Observer interface while the held
// count is positive. Seqlock write sections count as critical sections
// too: beginWrite/endWrite method calls (the sharded index's write
// bracket, DESIGN.md §12) are tracked exactly like Lock/Unlock — while
// a write section is open, every concurrent reader of that shard is
// spinning, so running observer code inside one stalls the whole read
// side, not just other writers. Calls on concrete observer implementations (e.g.
// *obsv.Collector in its own tests) are not flagged — the contract
// binds the caching layer's interface dispatch sites.
package observerlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer flags core.Observer notifications under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "observerlock",
	Doc:  "core.Observer methods must not be called while a shard or window mutex is held",
	Run:  run,
}

// CorePath is the import path defining the Observer interface.
const CorePath = "clampi/internal/core"

// observerMethods are the notification methods of core.Observer.
var observerMethods = map[string]bool{
	"OnAccess":     true,
	"OnEviction":   true,
	"OnAdjustment": true,
	"OnEpochClose": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body)
			}
		}
	}
	return nil
}

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opNotify
)

type op struct {
	kind opKind
	pos  token.Pos
	name string
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var ops []op
	deferred := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case isMutexMethod(info, sel, "Lock") || isMutexMethod(info, sel, "RLock") || isSectionMethod(info, sel, "beginWrite"):
				if !deferred[n] {
					ops = append(ops, op{kind: opLock, pos: n.Pos()})
				}
			case isMutexMethod(info, sel, "Unlock") || isMutexMethod(info, sel, "RUnlock") || isSectionMethod(info, sel, "endWrite"):
				// A deferred unlock releases at return: it never ends
				// the critical section for lexically later calls.
				if !deferred[n] {
					ops = append(ops, op{kind: opUnlock, pos: n.Pos()})
				}
			case observerMethods[name] && !deferred[n]:
				tv, ok := info.Types[sel.X]
				if ok && typeutil.IsNamed(tv.Type, CorePath, "Observer") {
					ops = append(ops, op{kind: opNotify, pos: n.Pos(), name: name})
				}
			}
		}
		return true
	})

	sort.SliceStable(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

	held := 0
	for _, o := range ops {
		switch o.kind {
		case opLock:
			held++
		case opUnlock:
			if held > 0 {
				held--
			}
		case opNotify:
			if held > 0 {
				pass.Reportf(o.pos, "core.Observer.%s called while a mutex is held: observers run user code synchronously — release the lock before notifying (lock-free hot-path contract, DESIGN.md §8)", o.name)
			}
		}
	}
}

// isMutexMethod reports whether sel calls the named method of
// sync.Mutex or sync.RWMutex (embedded mutexes included: the method's
// receiver identifies the defining type).
func isMutexMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	recv := typeutil.MethodReceiver(info.Uses[sel.Sel])
	if recv == nil {
		return false
	}
	return typeutil.IsNamed(recv, "sync", "Mutex") || typeutil.IsNamed(recv, "sync", "RWMutex")
}

// isSectionMethod reports whether sel calls a seqlock write-section
// method of the given name. Shard types are package-local, so the
// bracket is matched by method name on any receiver — the same
// convention seqlockcheck uses.
func isSectionMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	return typeutil.MethodReceiver(info.Uses[sel.Sel]) != nil
}
