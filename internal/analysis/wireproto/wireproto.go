// Package wireproto cross-checks the wire protocol's parallel tables
// statically (DESIGN.md §13): the op-code constants, the opNames label
// map, the server dispatch switch, the client response switches and the
// encode call sites must all agree, and the error-code ↔ sentinel maps
// must be inverses of each other. Each table lives in a different file
// and nothing but convention keeps them in lockstep — exactly the kind
// of drift a new op code added to the codec but not the server handler
// causes, which no test catches until a live frame dies with
// "unexpected op".
//
// The analyzer gates itself to packages that declare an `opNames`
// package-level variable (internal/wire and its corpus mirrors) and
// checks, over the non-test files:
//
//   - every Op* byte constant is a key of opNames, is encoded somewhere
//     (passed to rpc/RPC/AppendFrame/respond), and is dispatched: a
//     request op (high bit clear) needs a case arm in the server's
//     `handle` function; a response op (high bit set) needs a case arm
//     outside `handle` (the client's response switches);
//   - every Code* uint16 constant is produced by errorToCode and
//     consumed by a codeToError case — except a code produced only by
//     errorToCode's default arm (the catch-all, CodeInternal), which
//     codeToError's own default covers;
//   - every package-level error sentinel referenced by a non-default
//     arm of errorToCode is also referenced by a non-default arm of
//     codeToError, and vice versa — an errors.Is identity must survive
//     the round-trip over the wire;
//   - payload size constants (*Size and *MaxPayload) fit the frame
//     header's uint32 length field, and every *Size constant fits
//     DefaultMaxPayload.
package wireproto

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer cross-checks the wire protocol tables; see the package doc.
var Analyzer = &analysis.Analyzer{
	Name: "wireproto",
	Doc:  "cross-check the wire protocol tables: op codes vs opNames/encode/dispatch, error codes and sentinels vs errorToCode/codeToError, payload sizes vs MaxPayload (DESIGN.md §13)",
	Run:  run,
}

// encoders are the callees whose op-code argument constitutes an
// encode site: the op demonstrably leaves through a frame writer.
var encoders = map[string]bool{"rpc": true, "RPC": true, "AppendFrame": true, "respond": true}

// protoConst is one Op*/Code* constant and where the tables mention it.
type protoConst struct {
	name  string
	value uint64
	pos   token.Pos

	inOpNames  bool
	encoded    bool
	caseFuncs  map[string]bool // functions containing a case arm for it
	returnedIn map[string]bool // functions returning it (non-default arms)
	defaulted  bool            // returned only by errorToCode's default arm
}

func run(pass *analysis.Pass) error {
	files := nonTestFiles(pass)
	opNamesLit := findOpNames(pass, files)
	if opNamesLit == nil {
		return nil // not a wire-protocol package
	}
	ops, codes := collectConsts(pass, files)
	if len(ops) == 0 {
		return nil
	}
	scanUses(pass, files, opNamesLit, ops, codes)
	checkOps(pass, ops)
	checkCodes(pass, codes)
	checkSentinels(pass, files)
	checkSizes(pass, files, ops)
	return nil
}

// nonTestFiles drops _test.go files: the tables under contract are the
// production ones, and test helpers legitimately mention ops half-way.
func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// findOpNames locates the opNames map literal — the analyzer's gate.
func findOpNames(pass *analysis.Pass, files []*ast.File) *ast.CompositeLit {
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "opNames" || i >= len(vs.Values) {
						continue
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// collectConsts gathers the Op* byte and Code* uint16 constants.
func collectConsts(pass *analysis.Pass, files []*ast.File) (ops, codes map[types.Object]*protoConst) {
	ops = make(map[types.Object]*protoConst)
	codes = make(map[types.Object]*protoConst)
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					v, exact := constant.Uint64Val(constant.ToInt(obj.Val()))
					if !exact {
						continue
					}
					pc := &protoConst{
						name:       name.Name,
						value:      v,
						pos:        name.Pos(),
						caseFuncs:  make(map[string]bool),
						returnedIn: make(map[string]bool),
					}
					switch {
					case strings.HasPrefix(name.Name, "Op") && isBasic(obj.Type(), types.Uint8):
						ops[obj] = pc
					case strings.HasPrefix(name.Name, "Code") && isBasic(obj.Type(), types.Uint16):
						codes[obj] = pc
					}
				}
			}
		}
	}
	return ops, codes
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// scanUses walks every use of each tracked constant and records which
// table it appears in: opNames key, encode argument, case arm (by
// enclosing function), or return value (by enclosing function and
// default-arm status).
func scanUses(pass *analysis.Pass, files []*ast.File, opNamesLit *ast.CompositeLit, ops, codes map[types.Object]*protoConst) {
	analysis.InspectWithStack(files, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		pc := ops[obj]
		if pc == nil {
			pc = codes[obj]
		}
		if pc == nil {
			return
		}
		fn := enclosingFunc(stack)
		for i := len(stack) - 1; i >= 0; i-- {
			switch ctx := stack[i].(type) {
			case *ast.KeyValueExpr:
				if ctx.Key == id && i > 0 && stack[i-1] == ast.Node(opNamesLit) {
					pc.inOpNames = true
				}
			case *ast.CallExpr:
				if calleeName(ctx) != "" && encoders[calleeName(ctx)] && inArgs(ctx, id, stack, i) {
					pc.encoded = true
				}
			case *ast.CaseClause:
				if exprInList(ctx.List, id, stack, i) {
					pc.caseFuncs[fn] = true
				}
			case *ast.ReturnStmt:
				if fn != "" {
					if inDefaultArm(stack, i) {
						pc.defaulted = true
					} else {
						pc.returnedIn[fn] = true
					}
				}
			}
		}
	})
}

// enclosingFunc names the innermost enclosing function declaration.
func enclosingFunc(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// calleeName extracts the bare name of a call's callee (f or x.f).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// inArgs reports whether the identifier (at stack depth idIdx's child)
// sits in the call's argument list — directly, not nested in a subcall.
func inArgs(call *ast.CallExpr, id *ast.Ident, stack []ast.Node, callIdx int) bool {
	// The path from the call to the ident must not pass another call.
	for i := callIdx + 1; i < len(stack); i++ {
		if _, ok := stack[i].(*ast.CallExpr); ok {
			return false
		}
	}
	for _, arg := range call.Args {
		if containsIdent(arg, id) {
			return true
		}
	}
	return false
}

// exprInList reports whether the identifier hangs off one of the case
// clause's guard expressions (not its body).
func exprInList(list []ast.Expr, id *ast.Ident, stack []ast.Node, caseIdx int) bool {
	// The ident must be inside the clause's List, not its Body: walk up
	// from the ident; the node directly under the CaseClause must be an
	// expression of List.
	var under ast.Node = id
	if caseIdx+1 < len(stack) {
		under = stack[caseIdx+1]
	}
	for _, e := range list {
		if ast.Node(e) == under {
			return true
		}
	}
	return false
}

// containsIdent reports whether expr contains the exact ident node.
func containsIdent(expr ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == ast.Node(id) {
			found = true
		}
		return !found
	})
	return found
}

// inDefaultArm reports whether the node at stack[idx] sits inside a
// default switch arm (a CaseClause with no guard expressions).
func inDefaultArm(stack []ast.Node, idx int) bool {
	for i := idx; i >= 0; i-- {
		if cc, ok := stack[i].(*ast.CaseClause); ok {
			return cc.List == nil
		}
	}
	return false
}

// checkOps enforces the four per-op obligations.
func checkOps(pass *analysis.Pass, ops map[types.Object]*protoConst) {
	for _, pc := range sorted(ops) {
		if !pc.inOpNames {
			pass.Reportf(pc.pos, "op %s has no opNames entry; diagnostics and metrics will print a raw byte", pc.name)
		}
		if !pc.encoded {
			pass.Reportf(pc.pos, "op %s is never encoded: no rpc/RPC/AppendFrame/respond call carries it", pc.name)
		}
		if pc.value&0x80 == 0 {
			if !pc.caseFuncs["handle"] {
				pass.Reportf(pc.pos, "request op %s has no dispatch arm in the server's handle switch; a conforming client frame would die as unexpected", pc.name)
			}
		} else {
			delete(pc.caseFuncs, "handle")
			if len(pc.caseFuncs) == 0 {
				pass.Reportf(pc.pos, "response op %s is never dispatched by a client response switch; the server can emit a frame no client understands", pc.name)
			}
		}
	}
}

// checkCodes enforces that every error code round-trips: produced by
// errorToCode, reconstructed by codeToError (catch-all codes exempt).
func checkCodes(pass *analysis.Pass, codes map[types.Object]*protoConst) {
	for _, pc := range sorted(codes) {
		produced := pc.returnedIn["errorToCode"]
		if !produced && !pc.defaulted {
			pass.Reportf(pc.pos, "error code %s is never produced by errorToCode; no server failure maps to it", pc.name)
		}
		if !pc.caseFuncs["codeToError"] && !(pc.defaulted && !produced) {
			pass.Reportf(pc.pos, "error code %s has no codeToError case; the client degrades it to a transient error and errors.Is breaks over the wire", pc.name)
		}
	}
}

// sorted returns the constants in declaration order for deterministic
// diagnostics.
func sorted(m map[types.Object]*protoConst) []*protoConst {
	out := make([]*protoConst, 0, len(m))
	for _, pc := range m {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// checkSentinels diffs the package-level error sentinels referenced by
// the non-default arms of errorToCode and codeToError.
func checkSentinels(pass *analysis.Pass, files []*ast.File) {
	type site struct {
		obj types.Object
		pos token.Pos
	}
	collect := func(fnName string) map[types.Object]token.Pos {
		out := make(map[types.Object]token.Pos)
		for _, file := range files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != fnName || fd.Body == nil {
					continue
				}
				var stack []ast.Node
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if n == nil {
						stack = stack[:len(stack)-1]
						return true
					}
					if id, ok := n.(*ast.Ident); ok {
						obj := pass.TypesInfo.Uses[id]
						if isSentinel(obj) && !inDefaultArm(stack, len(stack)-1) {
							if _, seen := out[obj]; !seen {
								out[obj] = id.Pos()
							}
						}
					}
					stack = append(stack, n)
					return true
				})
			}
		}
		return out
	}
	enc := collect("errorToCode")
	dec := collect("codeToError")
	if len(enc) == 0 && len(dec) == 0 {
		return
	}
	var missing []site
	for obj, pos := range enc {
		if _, ok := dec[obj]; !ok {
			missing = append(missing, site{obj, pos})
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].pos < missing[j].pos })
	for _, s := range missing {
		pass.Reportf(s.pos, "sentinel %s is classified by errorToCode but never reconstructed by codeToError; its errors.Is identity is lost over the wire", s.obj.Name())
	}
	missing = missing[:0]
	for obj, pos := range dec {
		if _, ok := enc[obj]; !ok {
			missing = append(missing, site{obj, pos})
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].pos < missing[j].pos })
	for _, s := range missing {
		pass.Reportf(s.pos, "sentinel %s is reconstructed by codeToError but never classified by errorToCode; the server can never send it", s.obj.Name())
	}
}

// isSentinel reports whether obj is a package-level error variable.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return typeutil.ImplementsError(v.Type())
}

// checkSizes enforces the frame-size arithmetic: the payload length
// field is a uint32, so any *MaxPayload constant must fit it, and every
// *Size payload constant must fit under the default payload cap.
func checkSizes(pass *analysis.Pass, files []*ast.File, ops map[types.Object]*protoConst) {
	var maxPayload int64 = -1
	type sized struct {
		name  string
		value int64
		pos   token.Pos
	}
	var sizes []sized
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || obj.Val().Kind() != constant.Int {
						continue
					}
					v, exact := constant.Int64Val(constant.ToInt(obj.Val()))
					if !exact {
						continue
					}
					switch {
					case strings.HasSuffix(name.Name, "MaxPayload"):
						// The binding cap is the smallest declared limit:
						// a permissive cap must not mask a size constant
						// that overflows a stricter one.
						if maxPayload < 0 || v < maxPayload {
							maxPayload = v
						}
						if v > math.MaxUint32 {
							pass.Reportf(name.Pos(), "%s (%d) exceeds the frame header's uint32 payload length field", name.Name, v)
						}
					case strings.HasSuffix(name.Name, "Size"):
						sizes = append(sizes, sized{name.Name, v, name.Pos()})
					}
				}
			}
		}
	}
	if maxPayload < 0 {
		return
	}
	for _, s := range sizes {
		if s.value > maxPayload {
			pass.Reportf(s.pos, "%s (%d) exceeds the payload cap %d; a conforming frame could never carry it", s.name, s.value, maxPayload)
		}
	}
}
