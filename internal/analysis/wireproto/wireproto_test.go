package wireproto_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/wireproto"
)

// TestWireProto drives both corpora: wireok's tables are fully
// consistent (zero diagnostics); wirebad breaks one obligation per
// constant — including the deleted-dispatch-arm and reordered-table
// acceptance cases — and every break is reported on its line.
func TestWireProto(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wireproto.Analyzer, "wireok", "wirebad")
}

// TestWireProtoLiveTree proves internal/wire's real tables — 15 ops,
// 9 codes, the sentinel maps and the size constants — are in lockstep.
func TestWireProtoLiveTree(t *testing.T) {
	analysistest.RunClean(t, "../../..", wireproto.Analyzer, "./internal/wire")
}
