// Package wirebad is the wireproto violation corpus: each constant or
// table entry breaks exactly one obligation — a request op with no
// server dispatch arm (the deleted-arm acceptance case), an op missing
// from opNames, an op that is never encoded, a response no client
// dispatches, error codes and sentinels that do not round-trip, and
// size constants that cannot fit a conforming frame.
package wirebad

import "errors"

// Op codes.
const (
	OpPing   byte = 0x01
	OpQuery  byte = 0x02 // want "request op OpQuery has no dispatch arm in the server's handle switch"
	OpGhost  byte = 0x03 // want "op OpGhost has no opNames entry"
	OpNoSend byte = 0x04 // want "op OpNoSend is never encoded"

	OpPong byte = 0x81
	OpMiss byte = 0x82 // want "response op OpMiss is never dispatched by a client response switch"
)

var opNames = map[byte]string{
	OpPing: "ping", OpQuery: "query", OpNoSend: "nosend",
	OpPong: "pong", OpMiss: "miss",
}

// Error codes.
const (
	CodeZero uint16 = 0
	CodeA    uint16 = 1
	CodeB    uint16 = 2 // want "error code CodeB has no codeToError case"
	CodeC    uint16 = 3 // want "error code CodeC is never produced by errorToCode"
)

// Sentinels.
var (
	ErrOne   = errors.New("one")
	ErrTwo   = errors.New("two")
	ErrThree = errors.New("three")
)

// Sizes: the binding payload cap is the smallest declared limit.
const (
	MaxPayload     = 1 << 20
	oversizedSize  = 1 << 30 // want "oversizedSize .* exceeds the payload cap"
	WildMaxPayload = 1 << 33 // want "WildMaxPayload .* exceeds the frame header's uint32 payload length field"
)

func AppendFrame(buf []byte, op byte, payload []byte) []byte {
	return append(append(buf, op), payload...)
}

type conn struct{ wb []byte }

func (c *conn) rpc(op byte, payload []byte) error {
	c.wb = AppendFrame(c.wb[:0], op, payload)
	return nil
}

func respond(op byte, payload []byte) []byte {
	return AppendFrame(nil, op, payload)
}

// client encodes OpPing, OpQuery and OpGhost — but never OpNoSend.
func (c *conn) client() error {
	if err := c.rpc(OpPing, nil); err != nil {
		return err
	}
	if err := c.rpc(OpQuery, nil); err != nil {
		return err
	}
	_ = AppendFrame(nil, OpGhost, nil)
	return nil
}

// handle dispatches OpPing, OpGhost and OpNoSend; the OpQuery arm has
// been (deliberately) deleted.
func handle(op byte, payload []byte) []byte {
	switch op {
	case OpPing:
		return respond(OpPong, nil)
	case OpGhost:
		return respond(OpMiss, nil)
	case OpNoSend:
		return nil
	default:
		return nil
	}
}

// dispatch knows OpPong only; OpMiss has no arm anywhere client-side.
func dispatch(op byte) error {
	switch op {
	case OpPong:
		return nil
	default:
		return errors.New("unexpected response")
	}
}

// errorToCode produces CodeA and CodeB from non-default arms and
// CodeZero from the catch-all; CodeC is never produced.
func errorToCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrOne):
		return CodeA
	case errors.Is(err, ErrTwo): // want "sentinel ErrTwo is classified by errorToCode but never reconstructed by codeToError"
		return CodeB
	default:
		return CodeZero
	}
}

// codeToError reconstructs CodeA→ErrOne and CodeC→ErrThree; CodeB and
// the catch-all CodeZero degrade to a plain error.
func codeToError(code uint16, msg string) error {
	switch code {
	case CodeA:
		return ErrOne
	case CodeC:
		return ErrThree // want "sentinel ErrThree is reconstructed by codeToError but never classified by errorToCode"
	default:
		return errors.New(msg)
	}
}
