// Package wireok is the wireproto clean corpus: a miniature protocol
// whose tables are fully consistent — every op is named, encoded and
// dispatched on the right side; every error code and sentinel
// round-trips; every size constant fits the payload cap.
package wireok

import "errors"

// Op codes: requests have the high bit clear, responses set.
const (
	OpPing   byte = 0x01
	OpRead   byte = 0x02
	OpWriteN byte = 0x03 // notified write: request carrying a descriptor tag

	OpPong byte = 0x81
	OpData byte = 0x82
	// OpPush is a server-initiated push (a notification descriptor):
	// like any response op it is encoded by respond and needs a client
	// dispatch arm, but the encode site lives outside handle.
	OpPush byte = 0x83
)

var opNames = map[byte]string{
	OpPing: "ping", OpRead: "read", OpWriteN: "write_notify",
	OpPong: "pong", OpData: "data", OpPush: "push",
}

// Error codes.
const (
	CodeInternal uint16 = 0 // catch-all: produced by errorToCode's default only
	CodeBounds   uint16 = 1
)

// Sentinels.
var (
	ErrBounds = errors.New("wireok: out of bounds")
)

// Sizes.
const (
	headerSize        = 12
	DefaultMaxPayload = 1 << 20
)

// AppendFrame is the encoder of this miniature protocol.
func AppendFrame(buf []byte, op byte, payload []byte) []byte {
	return append(append(buf, op), payload...)
}

type conn struct{ wb []byte }

// rpc encodes a request; the ops it is handed count as encoded.
func (c *conn) rpc(op byte, payload []byte) error {
	c.wb = AppendFrame(c.wb[:0], op, payload)
	return nil
}

// respond encodes a response on the server side.
func respond(op byte, payload []byte) []byte {
	return AppendFrame(nil, op, payload)
}

// client exercises every request op.
func (c *conn) client() error {
	if err := c.rpc(OpPing, nil); err != nil {
		return err
	}
	if err := c.rpc(OpRead, nil); err != nil {
		return err
	}
	return c.rpc(OpWriteN, nil)
}

// handle is the server dispatch switch: one arm per request op.
func handle(op byte, payload []byte) []byte {
	switch op {
	case OpPing:
		return respond(OpPong, nil)
	case OpRead:
		return respond(OpData, payload)
	case OpWriteN:
		return respond(OpPong, broadcast(payload))
	default:
		return nil
	}
}

// broadcast fans a notified write's descriptor out to subscribers as
// unsolicited pushes — a response-op encode site outside handle.
func broadcast(payload []byte) []byte {
	return respond(OpPush, payload)
}

// dispatch is the client response switch: one arm per response op.
func dispatch(op byte, payload []byte) error {
	switch op {
	case OpPong:
		return nil
	case OpData:
		_ = payload
		return nil
	case OpPush:
		_ = payload
		return nil
	default:
		return errors.New("unexpected response")
	}
}

// errorToCode classifies failures; the default arm is the catch-all.
func errorToCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrBounds):
		return CodeBounds
	default:
		return CodeInternal
	}
}

// codeToError reconstructs the sentinel; unknown codes degrade.
func codeToError(code uint16, msg string) error {
	switch code {
	case CodeBounds:
		return ErrBounds
	default:
		return errors.New(msg)
	}
}
