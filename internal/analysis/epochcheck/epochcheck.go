// Package epochcheck enforces the weak-consistency epoch contract of
// internal/rma (paper §III): the destination buffer of a Get/Rget — or of
// any GetOp issued through BatchWindow.GetBatch — is undefined until the
// epoch closes (Flush/FlushAll/Unlock/UnlockAll/Fence/Complete, or
// Request.Wait for Rget), and a window must not be used for data
// movement after its epoch was closed.
//
// The analysis is function-local and lexical: inside one function body
// it orders issues, completions and buffer uses by source position and
// flags
//
//  1. any read of a Get/Rget/GetBatch destination buffer between the
//     issuing call and the next completion call (foMPI catches this
//     class with a runtime assertion mode; here it is a compile-time
//     diagnostic) — for GetBatch, a buffer identifier named as the Dst
//     field of a rma.GetOp composite literal becomes pending at the next
//     GetBatch call — and
//  2. any Get/Put/Rget/Rput/Accumulate on a window after an Unlock/
//     UnlockAll/Complete in the same function with no intervening
//     Lock/LockAll/Fence/Start.
//
// It deliberately keys on the static receiver type being the
// clampi/internal/rma.Window interface: code written against the
// portable transport contract is checked, backend internals (which
// implement the contract and enforce it at runtime) are not.
//
// Two escapes keep the lexical rule precise on real code:
//
//   - an issue inside a return statement (`return w.Get(dst, ...)`)
//     creates no pending state — the in-flight transfer escapes to the
//     caller, which owns its completion, and lexically later code in
//     other branches never observes it; and
//   - a line carrying a //clampi:epoch comment with a reason is
//     suppressed — the sanctioned override for transport middleware
//     (fault injectors, fill verifiers) that must touch payload bytes
//     at issue time because the simulated transport materializes them
//     there.
package epochcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer flags uses of RMA results before the epoch closes.
var Analyzer = &analysis.Analyzer{
	Name: "epochcheck",
	Doc: "reads of a Get/Rget/GetBatch destination buffer before Flush/Unlock/Wait, " +
		"and rma.Window data access after the epoch was closed",
	Run: run,
}

// RMAPath is the import path of the package defining the Window and
// Request contracts.
const RMAPath = "clampi/internal/rma"

// Directive suppresses one line, stated with a reason:
// //clampi:epoch <why this pre-completion access is sound>
const Directive = "clampi:epoch"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		suppressed := suppressedLines(pass, file)
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body, suppressed)
			}
		}
	}
	return nil
}

// suppressedLines collects the lines of file carrying the directive.
func suppressedLines(pass *analysis.Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if strings.Contains(c.Text, Directive) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// opKind classifies the events of the lexical scan.
type opKind int

const (
	opIssue       opKind = iota // w.Get(dst,...) / w.Rget(dst,...): dst becomes pending
	opStage                     // rma.GetOp{Dst: buf, ...}: buf is staged for a batch issue
	opBatchIssue                // w.GetBatch(ops): every staged buffer becomes pending
	opCompleteAll               // epoch-closure call: every pending buffer completes
	opCompleteReq               // req.Wait(): the buffer of that request completes
	opUse                       // a pending buffer is read
	opKill                      // the buffer variable is reassigned: stop tracking it
	opLock                      // Lock/LockAll/LockWithType/Fence/Start: epoch (re)opens
	opUnlock                    // Unlock/UnlockAll/Complete: epoch closes
	opData                      // Get/Put/Rget/Rput/Accumulate/GetBatch: data movement on the window
)

// op is one event, ordered by source position.
type op struct {
	kind opKind
	pos  token.Pos
	obj  types.Object // buffer (issue/use/kill), request (completeReq) or window (lock/unlock/data)
	req  types.Object // request object of an Rget issue
	name string       // method or identifier name, for diagnostics
}

// anyWindow keys the lock-state of window receivers the analysis cannot
// resolve to a variable or field.
var anyWindow = types.NewLabel(token.NoPos, nil, "<any window>")

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, suppressed map[int]bool) {
	info := pass.TypesInfo
	var ops []op
	skipUse := make(map[*ast.Ident]bool) // idents that are not value reads
	deferred := make(map[*ast.CallExpr]bool)
	escaping := make(map[*ast.CallExpr]bool)      // issues inside a return: the caller completes them
	reqOf := make(map[*ast.CallExpr]types.Object) // Rget call → assigned request var

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Everything a defer runs — the direct call, or any call
			// inside a deferred closure — executes at return, after all
			// lexically later statements.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					deferred[call] = true
				}
				return true
			})

		case *ast.ReturnStmt:
			// An issue in a return expression (`return w.Get(dst, ...)`)
			// leaves the function with the transfer in flight: the caller
			// owns its completion, and no lexically later statement of
			// this function can execute on that path.
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						escaping[call] = true
					}
					return true
				})
			}

		case *ast.AssignStmt:
			// Reassigning a tracked variable detaches it from the
			// pending buffer; := introduces fresh objects, so only
			// plain assignment kills.
			if n.Tok == token.ASSIGN {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						skipUse[id] = true
						if o := info.Uses[id]; o != nil {
							ops = append(ops, op{kind: opKill, pos: id.Pos(), obj: o})
						}
					}
				}
			}
			// req, err := w.Rget(...): remember which request completes
			// which buffer.
			if len(n.Rhs) == 1 && len(n.Lhs) > 0 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if o := objOf(info, id); o != nil {
							reqOf[call] = o
						}
					}
				}
			}

		case *ast.CallExpr:
			// Deferred calls run at return: they neither complete
			// epochs for lexically later reads nor count as mid-body
			// accesses.
			if !deferred[n] {
				classifyCall(info, n, reqOf[n], escaping[n], skipUse, &ops)
			}

		case *ast.CompositeLit:
			// rma.GetOp{Dst: buf, ...} stages buf: it becomes pending at
			// the next GetBatch call, exactly like a Get destination.
			if tv, ok := info.Types[n]; ok && typeutil.IsNamed(tv.Type, RMAPath, "GetOp") {
				if id := getOpDstIdent(n); id != nil {
					if o := info.Uses[id]; o != nil {
						ops = append(ops, op{kind: opStage, pos: n.Pos(), obj: o})
					}
				}
			}

		case *ast.Ident:
			// A use of a slice variable is a potential read of a
			// pending RMA destination.
			if !skipUse[n] {
				if o := info.Uses[n]; o != nil && isSliceVar(o) {
					ops = append(ops, op{kind: opUse, pos: n.Pos(), obj: o, name: n.Name})
				}
			}
		}
		return true
	})

	sort.SliceStable(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

	pending := make(map[types.Object]string) // buffer → issuing method
	staged := make(map[types.Object]bool)    // buffer → named as a GetOp.Dst, batch not yet issued
	reqBuf := make(map[types.Object]types.Object)
	closed := make(map[types.Object]bool) // window → epoch closed earlier in this function
	for _, o := range ops {
		switch o.kind {
		case opKill:
			delete(pending, o.obj)
			delete(staged, o.obj)
		case opIssue:
			if o.obj != nil {
				pending[o.obj] = o.name
				if o.req != nil {
					reqBuf[o.req] = o.obj
				}
			}
		case opStage:
			staged[o.obj] = true
		case opBatchIssue:
			for buf := range staged {
				pending[buf] = o.name
			}
			clear(staged)
		case opCompleteAll:
			clear(pending)
			clear(reqBuf)
		case opCompleteReq:
			if buf, ok := reqBuf[o.obj]; ok {
				delete(pending, buf)
			}
		case opUse:
			if m, ok := pending[o.obj]; ok {
				if !suppressed[pass.Fset.Position(o.pos).Line] {
					pass.Reportf(o.pos, "buffer %q is read before the %s completes: RMA results are undefined until the epoch closes (Flush/Unlock/Wait; rma.Window contract, paper §III), or annotate the line with //%s <reason>", o.name, m, Directive)
				}
				delete(pending, o.obj) // one report per issue
			}
		case opLock:
			if o.obj == nil {
				clear(closed)
			} else {
				delete(closed, o.obj)
				delete(closed, anyWindow)
			}
		case opUnlock:
			closed[windowKey(o.obj)] = true
		case opData:
			if closed[windowKey(o.obj)] || closed[anyWindow] || (o.obj != nil && closed[o.obj]) {
				if !suppressed[pass.Fset.Position(o.pos).Line] {
					pass.Reportf(o.pos, "rma.Window.%s after the epoch was closed in this function: open a new Lock/LockAll epoch before further data movement", o.name)
				}
			}
		}
	}
}

func windowKey(obj types.Object) types.Object {
	if obj == nil {
		return anyWindow
	}
	return obj
}

// classifyCall appends the ops of one (non-deferred) call expression.
// escapes marks a call inside a return expression: its issue creates no
// pending state (the caller completes the transfer), but it still
// counts as data movement for the closed-epoch check.
func classifyCall(info *types.Info, call *ast.CallExpr, req types.Object, escapes bool, skipUse map[*ast.Ident]bool, ops *[]op) {
	// len/cap read only the slice header, never the transferred data.
	if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
		for _, a := range call.Args {
			if aid, ok := a.(*ast.Ident); ok {
				skipUse[aid] = true
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return
	}
	switch {
	case typeutil.IsNamed(tv.Type, RMAPath, "Window"),
		typeutil.IsNamed(tv.Type, RMAPath, "BatchWindow"),
		typeutil.IsNamed(tv.Type, RMAPath, "NotifyWindow"):
		recv := typeutil.ObjectOf(info, sel.X)
		name := sel.Sel.Name
		switch name {
		case "GetBatch":
			// Every buffer staged in a GetOp literal up to here becomes
			// pending; pos is the call's end so Dst identifiers in an
			// inline ops literal stage before the issue.
			if !escapes {
				*ops = append(*ops, op{kind: opBatchIssue, pos: call.End(), name: "rma.BatchWindow.GetBatch"})
			}
			*ops = append(*ops, op{kind: opData, pos: call.Pos(), obj: recv, name: name})
		case "Get", "Rget":
			var dst types.Object
			if len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					dst = info.Uses[id]
				}
			}
			// pos is the call's end so the dst identifier inside the
			// argument list is ordered before the issue, not flagged.
			if !escapes {
				*ops = append(*ops, op{kind: opIssue, pos: call.End(), obj: dst, req: req, name: "rma.Window." + name})
			}
			*ops = append(*ops, op{kind: opData, pos: call.Pos(), obj: recv, name: name})
		case "Put", "Rput", "Accumulate", "PutNotify":
			*ops = append(*ops, op{kind: opData, pos: call.Pos(), obj: recv, name: name})
		case "Flush", "FlushAll", "Wait":
			*ops = append(*ops, op{kind: opCompleteAll, pos: call.Pos()})
		case "Unlock", "UnlockAll", "Complete":
			*ops = append(*ops, op{kind: opCompleteAll, pos: call.Pos()})
			*ops = append(*ops, op{kind: opUnlock, pos: call.Pos(), obj: recv})
		case "Fence":
			// Fence both completes the previous epoch and opens the
			// next one.
			*ops = append(*ops, op{kind: opCompleteAll, pos: call.Pos()})
			*ops = append(*ops, op{kind: opLock, pos: call.Pos(), obj: recv})
		case "Lock", "LockWithType", "LockAll", "Start", "Post":
			*ops = append(*ops, op{kind: opLock, pos: call.Pos(), obj: recv})
		}
	case typeutil.IsNamed(tv.Type, RMAPath, "Request"):
		if sel.Sel.Name == "Wait" {
			if o := typeutil.ObjectOf(info, sel.X); o != nil {
				*ops = append(*ops, op{kind: opCompleteReq, pos: call.Pos(), obj: o})
			}
		}
	}
}

// getOpDstIdent returns the identifier a GetOp composite literal names
// as its Dst field — keyed or positional — or nil when the field is
// absent or a more complex expression (a slice or selector expression
// denotes a derived view, matching the ident-only tracking of Get).
func getOpDstIdent(lit *ast.CompositeLit) *ast.Ident {
	for i, elt := range lit.Elts {
		switch e := elt.(type) {
		case *ast.KeyValueExpr:
			if key, ok := e.Key.(*ast.Ident); ok && key.Name == "Dst" {
				id, _ := e.Value.(*ast.Ident)
				return id
			}
		default:
			if i == 0 { // positional: Dst is the first field
				id, _ := elt.(*ast.Ident)
				return id
			}
		}
	}
	return nil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isSliceVar(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok {
		return false
	}
	_, ok = v.Type().Underlying().(*types.Slice)
	return ok
}
