package epochcheck_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/epochcheck"
)

func TestEpochCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), epochcheck.Analyzer, "epoch")
}

// TestCleanOnCachingLayer proves the live code written against the
// rma.Window contract — the caching layer and the getter shims — obeys
// the epoch discipline.
func TestCleanOnCachingLayer(t *testing.T) {
	analysistest.RunClean(t, "../../..", epochcheck.Analyzer,
		"./internal/core", "./internal/getter", "./internal/rma")
}
