// Corpus for epochcheck: reads of RMA destination buffers before epoch
// closure, and window data access after the epoch was closed.
package epoch

import (
	"clampi/internal/datatype"
	"clampi/internal/rma"
)

// readBeforeFlush reads the Get destination before any completion call.
func readBeforeFlush(w rma.Window) byte {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	return dst[0] // want `buffer "dst" is read before the rma.Window.Get completes`
}

// readAfterFlush is the sanctioned pattern: complete, then read.
func readAfterFlush(w rma.Window) byte {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	_ = w.Flush(1)
	return dst[0]
}

// readAfterUnlock completes through Unlock instead of Flush.
func readAfterUnlock(w rma.Window) byte {
	dst := make([]byte, 64)
	_ = w.Lock(1)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	_ = w.Unlock(1)
	return dst[0]
}

// lenIsNotARead: the slice header is defined even mid-epoch.
func lenIsNotARead(w rma.Window) int {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	n := len(dst)
	_ = w.Flush(1)
	return n
}

// rgetReadBeforeWait reads the Rget destination before Request.Wait.
func rgetReadBeforeWait(w rma.Window) byte {
	dst := make([]byte, 64)
	req, _ := w.Rget(dst, datatype.Byte, 64, 1, 0)
	b := dst[0] // want `buffer "dst" is read before the rma.Window.Rget completes`
	_ = req.Wait()
	return b
}

// rgetReadAfterWait is the sanctioned request-based pattern.
func rgetReadAfterWait(w rma.Window) byte {
	dst := make([]byte, 64)
	req, _ := w.Rget(dst, datatype.Byte, 64, 1, 0)
	_ = req.Wait()
	return dst[0]
}

// passedToCall leaks the undefined buffer into another function.
func passedToCall(w rma.Window) {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	consume(dst) // want `buffer "dst" is read before the rma.Window.Get completes`
	_ = w.FlushAll()
}

func consume([]byte) {}

// reassignedBufferIsFresh: after reassignment the variable no longer
// aliases the in-flight transfer.
func reassignedBufferIsFresh(w rma.Window) byte {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	dst = make([]byte, 8)
	return dst[0]
}

// getAfterUnlock moves data outside any lock epoch.
func getAfterUnlock(w rma.Window) {
	dst := make([]byte, 64)
	_ = w.Lock(1)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	_ = w.Unlock(1)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0) // want `rma\.Window\.Get after the epoch was closed`
	_ = w.Flush(1)
}

// putAfterUnlockAll is the same hazard through the bulk unlock.
func putAfterUnlockAll(w rma.Window, src []byte) {
	_ = w.LockAll()
	_ = w.Put(src, datatype.Byte, len(src), 1, 0)
	_ = w.UnlockAll()
	_ = w.Put(src, datatype.Byte, len(src), 1, 0) // want `rma\.Window\.Put after the epoch was closed`
}

// relockReopens: a new Lock after Unlock makes access legal again.
func relockReopens(w rma.Window, src []byte) {
	_ = w.Lock(1)
	_ = w.Put(src, datatype.Byte, len(src), 1, 0)
	_ = w.Unlock(1)
	_ = w.Lock(1)
	_ = w.Put(src, datatype.Byte, len(src), 1, 0)
	_ = w.Unlock(1)
}

// deferredUnlockHolds: a deferred unlock closes the epoch at return,
// after every lexical access.
func deferredUnlockHolds(w rma.Window, src []byte) {
	_ = w.LockAll()
	defer func() { _ = w.UnlockAll() }()
	_ = w.Put(src, datatype.Byte, len(src), 1, 0)
}

// fenceReopens: Fence closes the previous epoch and opens the next.
func fenceReopens(w rma.Window, src []byte) {
	_ = w.Fence()
	_ = w.Put(src, datatype.Byte, len(src), 1, 0)
	_ = w.Fence()
}

// batchReadBeforeFlush reads a GetBatch destination before completion:
// GetOp.Dst buffers follow the same epoch contract as Get destinations.
func batchReadBeforeFlush(w rma.BatchWindow) byte {
	dst := make([]byte, 64)
	ops := []rma.GetOp{{Dst: dst, Target: 1, Disp: 0}}
	_ = w.GetBatch(ops)
	return dst[0] // want `buffer "dst" is read before the rma.BatchWindow.GetBatch completes`
}

// batchReadAfterFlush is the sanctioned pattern, ops literal inlined.
func batchReadAfterFlush(w rma.BatchWindow) byte {
	dst := make([]byte, 64)
	_ = w.GetBatch([]rma.GetOp{{Dst: dst, Target: 1, Disp: 0}})
	_ = w.FlushAll()
	return dst[0]
}

// batchPositionalDst stages through a positional GetOp literal.
func batchPositionalDst(w rma.BatchWindow) byte {
	dst := make([]byte, 64)
	_ = w.GetBatch([]rma.GetOp{{dst, 1, 0}})
	b := dst[0] // want `buffer "dst" is read before the rma.BatchWindow.GetBatch completes`
	_ = w.FlushAll()
	return b
}

// batchStagedNotIssued: naming a buffer in a GetOp literal alone leaves
// it defined — only the GetBatch call makes it pending.
func batchStagedNotIssued(w rma.BatchWindow) byte {
	dst := make([]byte, 64)
	ops := []rma.GetOp{{Dst: dst, Target: 1, Disp: 0}}
	_ = ops
	return dst[0]
}

// batchAfterUnlock: GetBatch is data movement and must not follow an
// epoch closure without a new lock.
func batchAfterUnlock(w rma.BatchWindow) {
	dst := make([]byte, 64)
	_ = w.LockAll()
	_ = w.GetBatch([]rma.GetOp{{Dst: dst, Target: 1, Disp: 0}})
	_ = w.UnlockAll()
	_ = w.GetBatch([]rma.GetOp{{Dst: dst, Target: 1, Disp: 0}}) // want `rma\.Window\.GetBatch after the epoch was closed`
	_ = w.FlushAll()
}

// tailCallIssueEscapes: a Get issued in a return statement leaves with
// the transfer in flight — the caller owns its completion, and the
// fall-through branch never observes it. This is the direct fast path
// of every transport middleware (`if bypass { return w.Get(...) }`).
func tailCallIssueEscapes(w rma.Window, dst []byte, direct bool) error {
	if direct {
		return w.Get(dst, datatype.Byte, len(dst), 1, 0)
	}
	consume(dst)
	return w.FlushAll()
}

// errorCheckedIssueStaysCaught: an early return on the error path does
// not complete the success path — the issue is outside the return
// expression, so the pre-completion read is still flagged.
func errorCheckedIssueStaysCaught(w rma.Window) byte {
	dst := make([]byte, 64)
	if err := w.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
		return 0
	}
	return dst[0] // want `buffer "dst" is read before the rma.Window.Get completes`
}

// annotatedPreCompletionRead is the sanctioned override for transport
// middleware that must touch payload bytes at issue time (the simulated
// transport materializes them there), stated with a reason.
func annotatedPreCompletionRead(w rma.Window) byte {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	b := dst[0] //clampi:epoch middleware corpus: injectors touch payloads at issue time
	_ = w.FlushAll()
	return b
}

// putNotifyAfterUnlock: PutNotify is data movement exactly like Put —
// notified writes after the epoch closed are flagged, and the
// rma.NotifyWindow receiver type is recognized as a window.
func putNotifyAfterUnlock(w rma.NotifyWindow) {
	src := make([]byte, 64)
	_ = w.LockAll()
	_ = w.PutNotify(src, datatype.Byte, 64, 1, 0, 7)
	_ = w.UnlockAll()
	_ = w.PutNotify(src, datatype.Byte, 64, 1, 0, 7) // want `rma\.Window\.PutNotify after the epoch was closed`
	_ = w.FlushAll()
}

// putNotifyInEpoch is the sanctioned notified-write pattern: publish
// inside the epoch, close, reopen before the next round.
func putNotifyInEpoch(w rma.NotifyWindow) {
	src := make([]byte, 64)
	_ = w.LockAll()
	_ = w.PutNotify(src, datatype.Byte, 64, 1, 0, 7)
	_ = w.UnlockAll()
	_ = w.LockAll()
	_ = w.PutNotify(src, datatype.Byte, 64, 1, 0, 8)
	_ = w.UnlockAll()
}

// getViaNotifyWindowTracked: reads through a NotifyWindow-typed handle
// carry the same pre-completion contract as through rma.Window.
func getViaNotifyWindowTracked(w rma.NotifyWindow) byte {
	dst := make([]byte, 64)
	_ = w.Get(dst, datatype.Byte, 64, 1, 0)
	return dst[0] // want `buffer "dst" is read before the rma.Window.Get completes`
}
