package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("_test"-suffixed for external test packages)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source using only the
// standard library: `go list -json` enumerates packages and their
// platform-selected files, and go/importer's source importer resolves
// imports transitively (module-aware through go/build). This is the
// dependency-free stand-in for golang.org/x/tools/go/packages.
//
// All packages loaded through one Loader share a FileSet and an import
// cache, so loading the whole tree type-checks each dependency once.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns an empty loader. Cgo is disabled for the loader's
// view of the world so every dependency (including the standard
// library's pure-Go fallbacks) can be type-checked from source.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom, delegating to the source
// importer with the unsafe pseudo-package special-cased.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.imp.ImportFrom(path, srcDir, mode)
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, e.g. "./...") and type-checks each of them, including in-package
// test files. External test packages (package foo_test) are returned as
// separate entries with an "_test"-suffixed path.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", lp.Error.Err)
		}
		files := joinAll(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
		if len(files) > 0 {
			pkg, err := l.check(lp.ImportPath, lp.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			pkg, err := l.check(lp.ImportPath+"_test", lp.Dir, joinAll(lp.Dir, lp.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir type-checks the single package formed by every .go file
// directly inside dir, under the given import path. It is how
// analysistest loads testdata corpora (which live under testdata/ and
// are therefore invisible to the go tool's package enumeration).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		const maxErrs = 5
		msgs := make([]string, 0, maxErrs)
		for _, e := range typeErrs[:min(len(typeErrs), maxErrs)] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

func joinAll(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}
