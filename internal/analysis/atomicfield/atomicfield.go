// Package atomicfield enforces atomic-only access to struct fields
// annotated with a "// clampi:atomic" comment. The annotation marks
// fields that are read and written concurrently without a guarding
// mutex — the internal/obsv counter, gauge, histogram and trace-ring
// cells on the lock-free observability hot path (DESIGN.md §8).
//
// An access to an annotated field is legal only as
//
//   - the receiver of a method call, possibly through an index
//     expression — s.v.Add(1), h.buckets[i].Load() — which covers the
//     sync/atomic value types (atomic.Int64 and friends);
//   - &s.f passed directly to a sync/atomic package function —
//     atomic.AddUint64(&s.f, 1);
//   - a key-only range (for i := range h.buckets) or len/cap, which
//     read the array shape, never the cells.
//
// Everything else — plain reads, assignments, ++/--, copying the value,
// taking the address for anything but sync/atomic — is flagged, unless
// the line carries a "//clampi:atomicinit <reason>" directive: the
// escape hatch for construction-time initialization of a value no other
// goroutine can reach yet (publication is the happens-before edge, so a
// plain store before it is sound). The annotation is package-local by
// construction: annotated fields are unexported, so every access site
// is in the package being analyzed.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/typeutil"
)

// Analyzer flags non-atomic access to fields marked // clampi:atomic.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "plain (non-sync/atomic) access to struct fields annotated // clampi:atomic",
	Run:  run,
}

// Marker is the annotation, written as a field comment:
//
//	next atomic.Uint64 // clampi:atomic
const Marker = "clampi:atomic"

// InitMarker is the escape-hatch line directive exempting one plain
// access — construction-time initialization before publication:
//
//	s.limit = limit //clampi:atomicinit construction: not yet published
const InitMarker = "clampi:atomicinit"

func run(pass *analysis.Pass) error {
	annotated := collectAnnotated(pass)
	if len(annotated) == 0 {
		return nil
	}
	directives := analysis.DirectiveLines(pass.Fset, pass.Files, InitMarker)
	analysis.InspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || !annotated[obj] {
			return
		}
		if !allowedContext(pass.TypesInfo, sel, stack) {
			p := pass.Fset.Position(sel.Sel.Pos())
			if directives[p.Filename][p.Line] {
				return
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is marked %s: access it only through sync/atomic operations (its atomic.* methods, or atomic.XxxT(&x.%s, ...))", sel.Sel.Name, Marker, sel.Sel.Name)
		}
	})
	return nil
}

// collectAnnotated maps the field objects of this package carrying the
// marker in their doc or trailing comment.
func collectAnnotated(pass *analysis.Pass) map[types.Object]bool {
	annotated := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc) && !hasMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						annotated[obj] = true
					}
				}
			}
			return true
		})
	}
	return annotated
}

func hasMarker(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.Contains(c.Text, Marker) {
			return true
		}
	}
	return false
}

// allowedContext decides whether the annotated-field selector sel is in
// one of the sanctioned contexts, given the stack of enclosing nodes
// (innermost last).
func allowedContext(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	// Climb through index expressions: h.buckets[i] accesses one cell
	// of an annotated array, judged like the field itself.
	cur := ast.Node(sel)
	i := len(stack) - 1
	for i >= 0 {
		ix, ok := stack[i].(*ast.IndexExpr)
		if !ok || ix.X != cur {
			break
		}
		cur = ix
		i--
	}
	if i < 0 {
		return false
	}
	parent := stack[i]

	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// Receiver of a method call: s.v.Add(1). The methods of the
		// sync/atomic value types are the sanctioned API.
		if p.X != cur {
			return false
		}
		if i == 0 {
			return false
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != p {
			return false
		}
		recv := typeutil.MethodReceiver(info.Uses[p.Sel])
		if recv == nil {
			return false
		}
		t := recv
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"

	case *ast.UnaryExpr:
		// &s.f as a direct argument of a sync/atomic function call.
		if p.Op != token.AND || p.X != cur || i == 0 {
			return false
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || !typeutil.PkgFuncCall(info, call, "sync/atomic", "") {
			return false
		}
		for _, arg := range call.Args {
			if arg == parent {
				return true
			}
		}
		return false

	case *ast.RangeStmt:
		// Key-only range reads the array length, not the cells.
		return p.X == cur && p.Value == nil

	case *ast.CallExpr:
		// len/cap read the shape only.
		if id, ok := p.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
		return false
	}
	return false
}
