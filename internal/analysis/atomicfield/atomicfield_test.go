package atomicfield_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicfield.Analyzer, "atomicf")
}

// TestObsvIsAtomicOnly proves the annotated observability fields —
// counters, gauges, histogram cells, the trace-ring sequence — are
// accessed exclusively through sync/atomic operations.
func TestObsvIsAtomicOnly(t *testing.T) {
	analysistest.RunClean(t, "../../..", atomicfield.Analyzer, "./internal/obsv")
}
