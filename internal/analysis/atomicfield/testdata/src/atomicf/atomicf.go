// Corpus for atomicfield: plain access to fields annotated
// // clampi:atomic.
package atomicf

import "sync/atomic"

// stats mixes annotated lock-free fields with an unannotated one.
type stats struct {
	hits    atomic.Int64    // clampi:atomic
	misses  uint64          // clampi:atomic
	buckets [4]atomic.Int64 // clampi:atomic
	name    string          // not annotated: plain access stays legal
}

// atomicAccess exercises every sanctioned form.
func atomicAccess(s *stats) int64 {
	s.hits.Add(1)
	atomic.AddUint64(&s.misses, 1)
	s.buckets[2].Store(7)
	var sum int64
	for i := range s.buckets {
		sum += s.buckets[i].Load()
	}
	_ = len(s.buckets)
	return sum + s.hits.Load() + int64(atomic.LoadUint64(&s.misses))
}

// plainReads load annotated cells without atomics.
func plainReads(s *stats) uint64 {
	return s.misses // want `field misses is marked clampi:atomic`
}

// plainWrites store without atomics.
func plainWrites(s *stats) {
	s.misses = 0 // want `field misses is marked clampi:atomic`
	s.misses++   // want `field misses is marked clampi:atomic`
}

// copyingAtomicValue copies the cell, losing atomicity (and tripping
// go vet's copylocks as well).
func copyingAtomicValue(s *stats) atomic.Int64 {
	return s.hits // want `field hits is marked clampi:atomic`
}

// addressForNonAtomicUse escapes the cell to arbitrary code.
func addressForNonAtomicUse(s *stats) *uint64 {
	return &s.misses // want `field misses is marked clampi:atomic`
}

// valueRangeCopiesCells: ranging with a value variable copies each
// atomic cell out of the array.
func valueRangeCopiesCells(s *stats) int64 {
	var sum int64
	for _, b := range s.buckets { // want `field buckets is marked clampi:atomic`
		sum += b.Load()
	}
	return sum
}

// unannotatedStaysLegal: only marked fields are constrained.
func unannotatedStaysLegal(s *stats) string {
	s.name = "w0"
	return s.name
}

// initEscapeHatch: a plain store during construction, before the value
// is published to any other goroutine, exempted by the line directive.
func initEscapeHatch(seed uint64) *stats {
	s := &stats{}
	s.misses = seed //clampi:atomicinit construction: not yet published
	return s
}
