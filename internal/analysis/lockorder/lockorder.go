// Package lockorder enforces the DESIGN.md §12/§13 lock hierarchy
// interprocedurally, on top of the internal/analysis/interproc
// summaries:
//
//  1. A shard fill mutex (clampi:lockrank fill) is the top of the
//     hierarchy: while one is held, no second fill mutex may be
//     acquired — directly or through any callee.
//  2. The cuckoo writer mutex (clampi:lockrank cuckoo) sits below the
//     fill mutex: fill→cuckoo is the sanctioned order; acquiring a
//     fill mutex while a cuckoo writer lock (seqlock write section) is
//     held is an inversion.
//  3. Data-path stripes (clampi:lockrank stripe) form a total order by
//     index: holding one stripe while acquiring another is legal only
//     when both indices are compile-time constants in ascending order
//     (the lockRange loop pattern is fine — it releases before the
//     next range); a stripe acquisition inside a descending loop is an
//     inversion by construction.
//  4. No blocking operation — a wire round-trip (RPC/rpc), an
//     rma.Window data op through the interface, or an Observer
//     callback — may run while a fill mutex or cuckoo write section is
//     held, directly or through any callee (the seqlock would spin
//     every reader for the duration of a network round-trip).
//
// A finding is suppressed by a //clampi:lockorder <reason> comment on
// its line; the reason is mandatory by convention and reviewed, not
// parsed.
package lockorder

import (
	"go/ast"
	"go/token"

	"clampi/internal/analysis"
	"clampi/internal/analysis/interproc"
)

// Marker is the escape directive: a //clampi:lockorder <reason>
// comment on the offending line acknowledges and suppresses a finding.
const Marker = "clampi:lockorder"

// Analyzer enforces the lock hierarchy; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce the DESIGN.md §12/§13 lock hierarchy (fill → cuckoo, single fill, ascending stripes, no blocking op under a shard lock) across function calls",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	eng := interproc.For(pass)
	directives := analysis.DirectiveLines(pass.Fset, pass.Files, Marker)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, eng, directives, fd)
		}
	}
	return nil
}

// checkFunc folds the function's event trace over a held-lock multiset
// and reports every hierarchy violation at the event that completes it.
func checkFunc(pass *analysis.Pass, eng *interproc.Engine, directives map[string]map[int]bool, fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		p := pass.Fset.Position(pos)
		if directives[p.Filename][p.Line] {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	held := make(map[interproc.LockClass]int)
	// Stripe ascending-order state: the highest constant index among
	// the currently held stripes, and whether every held stripe has a
	// constant index (only then can ascent be proven).
	stripeTop := int64(-1)
	stripeConst := true
	for _, ev := range eng.Trace(pass.TypesInfo, fd) {
		if ev.Deferred {
			// Runs at function exit; order violations there would be
			// against an empty held set (releases only, in practice).
			continue
		}
		switch ev.Kind {
		case interproc.EvAcquire:
			switch ev.Class {
			case interproc.LockFill:
				if held[interproc.LockFill] > 0 {
					report(ev.Pos, "acquiring a second fill mutex while one is already held; the hierarchy allows at most one (DESIGN.md §12)")
				} else if held[interproc.LockCuckoo] > 0 {
					report(ev.Pos, "acquiring a fill mutex while a cuckoo write section is held inverts the fill→cuckoo lock order (DESIGN.md §12)")
				}
			case interproc.LockStripe:
				if ev.Descending {
					report(ev.Pos, "stripe lock acquired in a descending loop; stripes must be acquired in ascending index order (DESIGN.md §13)")
				} else if held[interproc.LockStripe] > 0 && !ev.Ascending &&
					!(stripeConst && ev.HasIndex && ev.Index > stripeTop) {
					// An acquisition inside a provably ascending loop is
					// the sanctioned lockRange shape; anything else needs
					// constant, strictly increasing indices.
					report(ev.Pos, "acquiring a stripe lock while another stripe is held without provably ascending indices (DESIGN.md §13)")
				}
				if ev.HasIndex {
					if ev.Index > stripeTop {
						stripeTop = ev.Index
					}
				} else {
					stripeConst = false
				}
			}
			held[ev.Class]++
		case interproc.EvRelease:
			if held[ev.Class] > 0 {
				held[ev.Class]--
			}
			if ev.Class == interproc.LockStripe && held[interproc.LockStripe] == 0 {
				stripeTop, stripeConst = -1, true
			}
		case interproc.EvCall:
			s := eng.Summary(ev.Callee)
			if s.AcquiresDuring(interproc.LockFill) {
				if held[interproc.LockFill] > 0 {
					report(ev.Pos, "call to %s may acquire a fill mutex while one is already held; the hierarchy allows at most one (DESIGN.md §12)", ev.Callee)
				} else if held[interproc.LockCuckoo] > 0 {
					report(ev.Pos, "call to %s may acquire a fill mutex under a cuckoo write section, inverting the fill→cuckoo lock order (DESIGN.md §12)", ev.Callee)
				}
			}
			if s.AcquiresDuring(interproc.LockStripe) && held[interproc.LockStripe] > 0 {
				report(ev.Pos, "call to %s may acquire a stripe lock while a stripe is held without provably ascending indices (DESIGN.md §13)", ev.Callee)
			}
			if s.Blocking && (held[interproc.LockFill] > 0 || held[interproc.LockCuckoo] > 0) {
				report(ev.Pos, "call to %s may block (%s) while a shard lock is held (DESIGN.md §12)", ev.Callee, s.BlockingWhy)
			}
			// The callee's net effect lands on our held set: a Lock
			// helper leaves its class held, an Unlock helper clears it.
			for c, n := range s.NetAcquire {
				held[c] += n
				if c == interproc.LockStripe && held[c] > 0 {
					stripeConst = false
				}
			}
			for c, n := range s.NetRelease {
				held[c] -= n
				if held[c] < 0 {
					held[c] = 0
				}
				if c == interproc.LockStripe && held[c] == 0 {
					stripeTop, stripeConst = -1, true
				}
			}
		case interproc.EvBlock:
			if held[interproc.LockFill] > 0 || held[interproc.LockCuckoo] > 0 {
				report(ev.Pos, "%s while a shard lock is held; blocking operations are forbidden under a fill mutex or cuckoo write section (DESIGN.md §12)", ev.Why)
			}
		}
	}
}
