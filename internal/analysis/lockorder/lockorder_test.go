package lockorder_test

import (
	"testing"

	"clampi/internal/analysis/analysistest"
	"clampi/internal/analysis/lockorder"
)

// TestLockOrder drives the corpus: every sanctioned shape is clean and
// every hierarchy violation — direct, interprocedural, and blocking —
// is reported on the expected line.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "lockord")
}

// TestLockOrderLiveTree proves the four lock-bearing packages respect
// the hierarchy: loaded together, so summaries propagate across their
// package boundaries, the analyzer reports nothing (the two structural
// stripe tests in internal/mpi carry reviewed escape directives).
func TestLockOrderLiveTree(t *testing.T) {
	analysistest.RunClean(t, "../../..", lockorder.Analyzer,
		"./internal/core", "./internal/cuckoo", "./internal/mpi", "./internal/wire")
}
