// Package lockord is the lockorder corpus: a miniature of the clampi
// lock landscape — fill mutexes, the cuckoo writer lock, data-path
// stripes, a wire client, an observer and a window interface — covering
// the sanctioned shapes (clean) and every rule's violation (want).
package lockord

import "sync"

// shard mirrors core.sshard: the fill mutex tops the hierarchy.
type shard struct {
	mu sync.Mutex // clampi:lockrank fill
}

// idx mirrors cuckoo.shard: the writer lock under the fill mutex.
type idx struct {
	mu sync.Mutex // clampi:lockrank cuckoo
}

// table mirrors the striped data path of mpi/wire.
type table struct {
	stripes []sync.RWMutex // clampi:lockrank stripe
}

// Observer mirrors core.Observer: callbacks run arbitrary user code.
type Observer interface {
	OnEviction(key uint64)
}

// Window mirrors rma.Window: data ops may block on the transport.
type Window interface {
	Get(dst []byte, target int) error
}

// client mirrors wire.Client: RPC is a synchronous round-trip.
type client struct{}

func (c *client) RPC(op byte) error { return nil }

// beginWrite/endWrite mirror the cuckoo seqlock write section.
func (x *idx) beginWrite() { x.mu.Lock() }
func (x *idx) endWrite()   { x.mu.Unlock() }

// lockFill/unlockFill are interprocedural lock helpers: lockFill
// returns with the fill mutex held (net acquire), unlockFill releases
// it on the caller's behalf (net release).
func lockFill(s *shard)   { s.mu.Lock() }
func unlockFill(s *shard) { s.mu.Unlock() }

// ---------------------------------------------------------------------------
// Sanctioned shapes — all clean.
// ---------------------------------------------------------------------------

// fillThenCuckoo is the §12 order: fill mutex first, then the cuckoo
// writer lock, released in reverse.
func fillThenCuckoo(s *shard, x *idx) {
	s.mu.Lock()
	x.beginWrite()
	x.endWrite()
	s.mu.Unlock()
}

// fillDeferred brackets with defer; the releases fold at exit and the
// function's net effect on its caller is zero.
func fillDeferred(s *shard, x *idx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	x.beginWrite()
	defer x.endWrite()
}

// ascendingConst takes two stripes with constant, strictly increasing
// indices — the provable total order.
func ascendingConst(t *table) {
	t.stripes[0].Lock()
	t.stripes[1].Lock()
	t.stripes[1].Unlock()
	t.stripes[0].Unlock()
}

// ascendingLoop mirrors mpi.lockRange/wire.lockStripes: one stripe per
// iteration of an upward loop, shared or exclusive per the caller.
func ascendingLoop(t *table, excl bool) {
	for i := 0; i < len(t.stripes); i++ {
		if excl {
			t.stripes[i].Lock()
		} else {
			t.stripes[i].RLock()
		}
	}
	for i := len(t.stripes) - 1; i >= 0; i-- {
		if excl {
			t.stripes[i].Unlock()
		} else {
			t.stripes[i].RUnlock()
		}
	}
}

// blockAfterRelease: blocking is fine once every shard lock is gone.
func blockAfterRelease(s *shard, c *client) error {
	s.mu.Lock()
	s.mu.Unlock()
	return c.RPC(1)
}

// escapeHatch is a real violation acknowledged with the escape
// directive — the finding on that line is suppressed.
func escapeHatch(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() //clampi:lockorder corpus proof that the escape directive suppresses the finding
	b.mu.Unlock()
	a.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Violations.
// ---------------------------------------------------------------------------

// twoFills holds two fill mutexes at once.
func twoFills(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "second fill mutex"
	b.mu.Unlock()
	a.mu.Unlock()
}

// cuckooThenFill inverts the §12 order: the write section is opened by
// a helper (net acquire), then the fill mutex is taken directly.
func cuckooThenFill(s *shard, x *idx) {
	x.beginWrite()
	s.mu.Lock() // want "inverts the fill→cuckoo lock order"
	s.mu.Unlock()
	x.endWrite()
}

// secondFillViaHelper hides the second acquisition in a callee.
func secondFillViaHelper(a, b *shard) {
	a.mu.Lock()
	lockFill(b) // want "call to lockord.lockFill may acquire a fill mutex while one is already held"
	unlockFill(b)
	a.mu.Unlock()
}

// inversionViaHelper is the lock-held-across-call variant the lexical
// seqlockcheck cannot see (its corpus documents that limitation): the
// write section is open, and the callee takes a fill mutex.
func inversionViaHelper(s *shard, x *idx) {
	x.beginWrite()
	lockFill(s) // want "may acquire a fill mutex under a cuckoo write section"
	unlockFill(s)
	x.endWrite()
}

// rpcUnderFill performs a wire round-trip with the fill mutex held.
func rpcUnderFill(s *shard, c *client) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.RPC(2) // want "wire round-trip RPC while a shard lock is held"
}

// observerUnderCuckoo notifies an observer inside a write section.
func observerUnderCuckoo(x *idx, obs Observer) {
	x.beginWrite()
	obs.OnEviction(7) // want "Observer callback OnEviction while a shard lock is held"
	x.endWrite()
}

// windowOpUnderFill issues a Window data op under the fill mutex.
func windowOpUnderFill(s *shard, w Window, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.Get(buf, 0) // want "Window data op Get while a shard lock is held"
}

// doRPC hides the round-trip one call deeper; its summary is Blocking.
func doRPC(c *client) error { return c.RPC(3) }

// blockingHelperUnderFill blocks through a summarized callee.
func blockingHelperUnderFill(s *shard, c *client) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return doRPC(c) // want "call to lockord.doRPC may block"
}

// openSection returns with the write section held — a net acquire.
func openSection(x *idx) { x.mu.Lock() }

// heldAcrossCall blocks while the helper-opened section is still held.
func heldAcrossCall(x *idx, c *client) error {
	openSection(x)
	err := c.RPC(4) // want "wire round-trip RPC while a shard lock is held"
	x.mu.Unlock()
	return err
}

// descendingStripes walks the stripe array downward — an inversion of
// the ascending total order by construction.
func descendingStripes(t *table) {
	for i := len(t.stripes) - 1; i >= 0; i-- {
		t.stripes[i].Lock() // want "descending loop"
	}
	for i := 0; i < len(t.stripes); i++ {
		t.stripes[i].Unlock()
	}
}

// reorderedPair takes two constant stripes in the wrong order — the
// deliberately-reordered lock pair of the acceptance criteria.
func reorderedPair(t *table) {
	t.stripes[1].Lock()
	t.stripes[0].Lock() // want "without provably ascending indices"
	t.stripes[0].Unlock()
	t.stripes[1].Unlock()
}

// lockStripe0 takes a stripe on its caller's behalf.
func lockStripe0(t *table) { t.stripes[0].Lock() }

// nestedStripeViaHelper holds a stripe while a callee takes another.
func nestedStripeViaHelper(t *table) {
	t.stripes[2].Lock()
	lockStripe0(t) // want "may acquire a stripe lock while a stripe is held"
	t.stripes[0].Unlock()
	t.stripes[2].Unlock()
}
