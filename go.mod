module clampi

go 1.22
