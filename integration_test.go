package clampi

import (
	"testing"
)

// TestMultipleCachingWindowsPerRank runs two independently cached windows
// (one always-cache, one transparent) side by side on every rank,
// interleaving gets, puts and epoch closures: the epoch listeners, caches
// and statistics of the two windows must stay fully isolated.
func TestMultipleCachingWindowsPerRank(t *testing.T) {
	err := Run(4, RunConfig{}, func(r *Rank) error {
		mk := func(seed byte) []byte {
			region := make([]byte, 4096)
			for i := range region {
				region[i] = byte(i)*seed + byte(r.ID())
			}
			return region
		}
		regionA := mk(3)
		regionB := mk(7)
		wa, err := Create(r, regionA, nil, WithMode(AlwaysCache), WithSeed(1))
		if err != nil {
			return err
		}
		defer wa.Free()
		wb, err := Create(r, regionB, nil, WithMode(Transparent), WithSeed(2))
		if err != nil {
			return err
		}
		defer wb.Free()

		if err := wa.LockAll(); err != nil {
			return err
		}
		if err := wb.LockAll(); err != nil {
			return err
		}
		target := (r.ID() + 1) % r.Size()
		bufA := make([]byte, 128)
		bufB := make([]byte, 128)
		for round := 0; round < 5; round++ {
			if err := wa.GetBytes(bufA, target, 256); err != nil {
				return err
			}
			if err := wb.GetBytes(bufB, target, 256); err != nil {
				return err
			}
			if err := wa.FlushAll(); err != nil {
				return err
			}
			if err := wb.FlushAll(); err != nil {
				return err
			}
			for i := range bufA {
				wantA := byte(256+i)*3 + byte(target)
				wantB := byte(256+i)*7 + byte(target)
				if bufA[i] != wantA {
					t.Errorf("round %d window A byte %d: got %d want %d", round, i, bufA[i], wantA)
					break
				}
				if bufB[i] != wantB {
					t.Errorf("round %d window B byte %d: got %d want %d", round, i, bufB[i], wantB)
					break
				}
			}
		}
		if err := wa.UnlockAll(); err != nil {
			return err
		}
		if err := wb.UnlockAll(); err != nil {
			return err
		}

		// Window A (always-cache) hit 4 of 5 rounds; window B
		// (transparent) was invalidated at every flush and never hit.
		sa, sb := wa.Stats(), wb.Stats()
		if sa.Hits != 4 {
			t.Errorf("window A hits = %d, want 4 (%s)", sa.Hits, sa)
		}
		if sb.Hits != 0 {
			t.Errorf("window B hits = %d, want 0 (%s)", sb.Hits, sb)
		}
		// A's flushes must not have invalidated B or vice versa:
		// transparent B accumulated one invalidation per epoch closure
		// on B only.
		if sa.Invalidations != 0 {
			t.Errorf("window A invalidations = %d", sa.Invalidations)
		}
		if sb.Invalidations == 0 {
			t.Errorf("window B never invalidated")
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsString covers the human-readable stats summary.
func TestStatsString(t *testing.T) {
	s := Stats{Gets: 10, Hits: 5, FullHits: 4, PartialHits: 1, Direct: 3, Failing: 2}
	out := s.String()
	for _, want := range []string{"gets=10", "hits=5", "50.0%", "failing=2"} {
		if !contains(out, want) {
			t.Errorf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
