package clampi

import (
	"time"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/datatype"
	"clampi/internal/fault"
	"clampi/internal/mpi"
	"clampi/internal/netsim"
	"clampi/internal/notify"
	"clampi/internal/obsv"
	"clampi/internal/rma"
	"clampi/internal/simtime"
	"clampi/internal/wire"
)

// Sentinel errors returned by window operations, for errors.Is tests.
// ErrOutOfRange covers both bad target ranks and accesses outside the
// target's window region; the transport layer returns finer-grained
// values that all match it.
var (
	// ErrFreed reports an operation on a freed window.
	ErrFreed = rma.ErrFreed
	// ErrOutOfRange reports an access addressed outside the world or
	// the target's window region.
	ErrOutOfRange = rma.ErrOutOfRange
	// ErrNoEpoch reports an RMA call outside an access epoch (e.g. a
	// Get before Lock/Fence).
	ErrNoEpoch = rma.ErrNoEpoch
	// ErrNoNotify reports a PutNotify on a window whose backend does not
	// implement the notified-RMA extension (rma.NotifyWindow).
	ErrNoNotify = core.ErrNoNotify
)

// Re-exported runtime types. The transport-agnostic vocabulary (Info,
// Op, LockType, RMA, Endpoint) anchors on internal/rma — it means the
// same thing over the simulated runtime and over a socket connection.
// Rank, RunConfig and ExecMode belong to the simulated path (Run); the
// wire path constructs windows with Dial instead.
type (
	// Rank is one simulated MPI process; see Run (the simulated path).
	Rank = mpi.Rank
	// Win is a raw (non-caching) simulated-MPI window.
	//
	// Deprecated: the concrete simulated window type is an
	// implementation detail. Hold windows as RMA (the transport-agnostic
	// interface) — Create/Allocate/Wrap and Dial all speak it — so code
	// is indifferent to whether the bytes live in a simulated region or
	// behind a clampi-serve daemon.
	Win = mpi.Win
	// Info carries window-creation hints (MPI_Info); both backends read
	// the CLaMPI mode from its InfoKey entry.
	Info = rma.Info
	// RunConfig selects the simulated machine (network model, rank
	// placement) for Run.
	RunConfig = mpi.Config
	// NetModel is the interconnect latency model.
	NetModel = netsim.Model
	// Duration is a virtual duration (nanoseconds).
	Duration = simtime.Duration
	// Op is an accumulate reduction operator.
	Op = rma.Op
	// LockType selects shared or exclusive passive-target locks.
	LockType = rma.LockType
	// RMA is the transport-agnostic window interface every backend
	// implements: *Win is the simulated-MPI implementation, *wire.Window
	// (returned inside Dial) the socket one.
	RMA = rma.Window
	// Endpoint is a rank's attachment to the transport.
	Endpoint = rma.Endpoint
	// NotifyWindow is the optional notified-RMA extension of RMA: both
	// backends implement it, and WithNotify/PutNotify build on it.
	// Probe with a type assertion when holding a bare RMA.
	NotifyWindow = rma.NotifyWindow
	// Notification is one delivered write descriptor (advanced use:
	// draining a raw window's queue directly via NotifyWindow).
	Notification = notify.Notification
	// ExecMode selects how the simulated ranks execute (see Run).
	ExecMode = mpi.ExecMode
)

// Execution modes. FidelityMeasured (the default) serializes ranks for
// calibration-grade timing; Throughput runs them genuinely concurrently
// with identical modelled virtual clocks.
const (
	FidelityMeasured = mpi.FidelityMeasured
	Throughput       = mpi.Throughput
)

// ParseExecMode parses a mode name ("fidelity", "throughput" and
// aliases) — for wiring -mode command-line flags to RunConfig.Mode.
func ParseExecMode(s string) (ExecMode, error) { return mpi.ParseExecMode(s) }

// Accumulate operators (MPI_REPLACE, MPI_SUM, MPI_MAX, MPI_MIN).
const (
	OpReplace = mpi.OpReplace
	OpSum     = mpi.OpSum
	OpMax     = mpi.OpMax
	OpMin     = mpi.OpMin
)

// Passive-target lock types (MPI_LOCK_SHARED, MPI_LOCK_EXCLUSIVE).
const (
	LockShared    = mpi.LockShared
	LockExclusive = mpi.LockExclusive
)

// Run launches an SPMD program on size simulated ranks and waits for all
// of them (the moral equivalent of mpirun).
func Run(size int, cfg RunConfig, program func(*Rank) error) error {
	return mpi.Run(size, cfg, program)
}

// DefaultNetModel returns the network model calibrated to the paper's
// Piz Daint (Cray Aries) measurements.
func DefaultNetModel() *NetModel { return netsim.DefaultModel() }

// Re-exported datatype system (MPI derived datatypes).
type Datatype = datatype.Datatype

// Basic datatypes.
var (
	Byte   = datatype.Byte
	Int32  = datatype.Int32
	Int64  = datatype.Int64
	Double = datatype.Double
)

// Datatype constructors (see internal/datatype for semantics).
var (
	Bytes      = datatype.Bytes
	Contiguous = datatype.Contiguous
	Vector     = datatype.Vector
	Indexed    = datatype.Indexed
	Struct     = datatype.Struct
	Hvector    = datatype.Hvector
	Hindexed   = datatype.Hindexed
	Subarray   = datatype.Subarray
)

// Caching-layer types re-exported from the core.
type (
	// Stats aggregates the caching counters of the paper's figures.
	Stats = core.Stats
	// Access describes the classification and cost of one get.
	Access = core.Access
	// AccessType classifies a get (hitting/direct/conflicting/...).
	AccessType = core.AccessType
	// Mode is the operational mode of a caching-enabled window.
	Mode = core.Mode
	// EvictionScheme selects the victim-scoring function.
	EvictionScheme = core.EvictionScheme
	// Params is the full low-level parameter set (advanced use).
	Params = core.Params
	// DistanceStats aggregates per-distance-class cache activity
	// (locality-aware windows only; see Window.DistanceStats).
	DistanceStats = core.DistanceStats
	// L2 is the node-shared second-level block cache (see WithL2).
	L2 = blockcache.L2
	// L2Stats is a snapshot of one L2 tier's counters.
	L2Stats = blockcache.L2Stats
)

// NewL2 constructs a node-shared L2 tier holding memoryBytes of
// blockSize-granular blocks (blockSize <= 0 selects the default). Share
// one instance among the caching windows of a node's ranks via WithL2.
var NewL2 = blockcache.NewL2

// Operational modes (paper §III-A).
const (
	Transparent = core.Transparent
	AlwaysCache = core.AlwaysCache
)

// Access types (paper §III-B).
const (
	AccessHit         = core.AccessHit
	AccessDirect      = core.AccessDirect
	AccessConflicting = core.AccessConflicting
	AccessCapacity    = core.AccessCapacity
	AccessFailing     = core.AccessFailing
)

// Eviction schemes (paper §III-D1).
const (
	SchemeFull       = core.SchemeFull
	SchemeTemporal   = core.SchemeTemporal
	SchemePositional = core.SchemePositional
)

// InfoKey is the MPI_Info key read at window creation to select the
// operational mode ("always-cache" or "transparent").
const InfoKey = core.InfoKey

// Observability layer (DESIGN.md §8): the caching core emits structured
// events to an installed Observer; internal/obsv provides a ready-made
// implementation (Collector) that turns them into a metrics registry and
// a bounded trace ring, with Prometheus/JSON exporters. A window without
// an observer pays a single nil-check per access.
type (
	// Observer receives the structured events of a caching window.
	// Implementations must be safe for concurrent use when the window
	// runs under the Throughput execution mode.
	Observer = core.Observer
	// AccessEvent describes one classified Get.
	AccessEvent = core.AccessEvent
	// EvictionEvent describes one evicted cache entry.
	EvictionEvent = core.EvictionEvent
	// AdjustmentEvent describes one adaptive parameter change.
	AdjustmentEvent = core.AdjustmentEvent
	// EpochEvent describes one epoch closure.
	EpochEvent = core.EpochEvent

	// Registry holds named metrics (atomic counters, gauges and
	// log2-bucketed virtual-time histograms) keyed by name+labels.
	Registry = obsv.Registry
	// Ring is a bounded ring buffer of trace events.
	Ring = obsv.Ring
	// Collector is the canonical Observer: it translates events into
	// Registry metrics and, optionally, Ring trace events.
	Collector = obsv.Collector
	// Label is one name=value dimension of a metric.
	Label = obsv.Label
	// TraceEvent is one flattened, JSON-serializable trace event.
	TraceEvent = obsv.Event
)

// Observability constructors and exporters (see internal/obsv).
var (
	// NewRegistry returns an empty metrics registry.
	NewRegistry = obsv.NewRegistry
	// NewRing returns a tracer retaining the newest capacity events.
	NewRing = obsv.NewRing
	// NewCollector wires a registry (required) and a trace ring
	// (optional, nil disables tracing) into an Observer.
	NewCollector = obsv.NewCollector
	// L is shorthand for constructing a Label.
	L = obsv.L
	// WritePrometheus renders a registry in the Prometheus text
	// exposition format.
	WritePrometheus = obsv.WritePrometheus
	// WriteJSON renders a registry as one stable JSON document.
	WriteJSON = obsv.WriteJSON
	// WriteTrace renders a ring's retained events as JSON lines.
	WriteTrace = obsv.WriteTrace
	// WriteMetricsFile writes a registry to a file: JSON when the path
	// ends in .json, Prometheus text format otherwise.
	WriteMetricsFile = obsv.WriteMetricsFile
	// WriteTraceFile writes a ring's retained events to a file as JSON
	// lines.
	WriteTraceFile = obsv.WriteTraceFile
	// PublishStats exports a Stats snapshot into a registry as gauges.
	PublishStats = obsv.PublishStats
)

// Resilience and fault injection (DESIGN.md §11): the transient sentinel
// family, the retry/breaker policies of the resilient fill path, and the
// deterministic seed-driven fault injector for chaos runs.
var (
	// ErrTransient is the umbrella sentinel for recoverable transport
	// failures: an operation that failed with it may succeed if retried.
	ErrTransient = rma.ErrTransient
	// ErrTimeout reports a transient per-operation timeout.
	ErrTimeout = rma.ErrTimeout
	// ErrCorrupt reports a payload rejected by integrity verification.
	ErrCorrupt = rma.ErrCorrupt
)

type (
	// RetryPolicy bounds how the caching layer re-issues transient
	// remote-get failures (exponential backoff with deterministic jitter,
	// all in virtual time).
	RetryPolicy = rma.RetryPolicy
	// BreakerPolicy configures the per-target circuit breaker.
	BreakerPolicy = core.BreakerPolicy
	// FaultScenario scripts one reproducible chaos run (fault rates,
	// triggers, scripted outages).
	FaultScenario = fault.Scenario
	// FaultOutage is one scripted per-target blackout window.
	FaultOutage = fault.Outage
	// FaultCounts tallies the faults one injector delivered; its Digest
	// identifies the exact injected sequence.
	FaultCounts = fault.Counts
	// FaultyWindow is the fault-injecting window decorator returned by
	// InjectFaults.
	FaultyWindow = fault.Window
)

// Resilience policy constructors and fault-injection helpers.
var (
	// DefaultRetryPolicy returns the retry policy the drivers use.
	DefaultRetryPolicy = rma.DefaultRetryPolicy
	// DefaultBreakerPolicy returns the breaker policy the drivers use.
	DefaultBreakerPolicy = core.DefaultBreakerPolicy
	// LoadFaultScenario reads a scenario from a JSON file.
	LoadFaultScenario = fault.LoadScenario
	// FaultScenarios returns the canned chaos scenario suite.
	FaultScenarios = fault.Canned
)

// InjectFaults decorates a window with seed-driven fault injection: the
// returned window fails, delays, truncates or corrupts gets according to
// the scenario, deterministically from the seed. Wrap the result with
// Wrap to run the caching layer under chaos. Give each rank's window a
// distinct seed (e.g. base+rank) so ranks fail independently while the
// fleet stays reproducible.
func InjectFaults(win RMA, sc FaultScenario, seed int64) *FaultyWindow {
	return fault.Wrap(win, sc, seed)
}

// config gathers everything the construction surface can set: the
// caching parameters (shared by every backend) and, for the wire
// transport, the dial settings. One option vocabulary serves Wrap,
// Create, Allocate and Dial — the caching options mean exactly the same
// thing over a simulated window and over a socket.
type config struct {
	params Params
	dial   wire.DialConfig
}

func applyOptions(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Option configures window construction (Wrap/Create/Allocate/Dial).
// Caching options apply on every backend; transport options (WithRank,
// WithWorld, WithPoolSize, ...) configure the wire connection and are
// ignored by the simulated constructors.
type Option func(*config)

// WithMode selects the operational mode.
func WithMode(m Mode) Option { return func(c *config) { c.params.Mode = m } }

// WithIndexSlots sets the initial index size |I_w| (hash-table slots).
func WithIndexSlots(n int) Option { return func(c *config) { c.params.IndexSlots = n } }

// WithStorageBytes sets the initial cache buffer size |S_w|.
func WithStorageBytes(n int) Option { return func(c *config) { c.params.StorageBytes = n } }

// WithScheme selects the eviction-scoring scheme.
func WithScheme(s EvictionScheme) Option { return func(c *config) { c.params.Scheme = s } }

// WithAdaptive enables runtime parameter tuning (paper §III-E1).
func WithAdaptive() Option { return func(c *config) { c.params.Adaptive = true } }

// WithSampleSize sets M, the eviction sample size (paper §III-D).
func WithSampleSize(m int) Option { return func(c *config) { c.params.SampleSize = m } }

// WithSeed fixes the RNG seed of hashing and eviction sampling.
func WithSeed(s int64) Option { return func(c *config) { c.params.Seed = s } }

// WithObserver installs an observer receiving the window's structured
// cache events (accesses, evictions, adjustments, epoch closures).
// Install a *Collector to feed a metrics Registry and trace Ring; any
// Observer implementation works. A nil observer disables emission.
func WithObserver(o Observer) Option { return func(c *config) { c.params.Observer = o } }

// WithParams replaces the whole caching parameter set (advanced use);
// options listed after it still apply on top.
func WithParams(params Params) Option { return func(c *config) { c.params = params } }

// WithoutCoalescing disables the miss-coalescing pass of GetBatch: every
// batched miss is issued as its own remote message, exactly like a
// sequential Get loop. Mainly for A/B measurements and equivalence tests.
func WithoutCoalescing() Option { return func(c *config) { c.params.DisableCoalesce = true } }

// WithRetry makes the caching layer retry transient remote-get failures
// under the given policy (DESIGN.md §11). Backoffs advance the rank's
// virtual clock, so retried runs stay deterministic. Over the wire
// transport, a positive pol.Deadline is additionally propagated to the
// socket as a per-attempt I/O deadline (rma.DeadlineWindow), so a hung
// read surfaces as ErrTimeout instead of blocking past the budget.
func WithRetry(pol RetryPolicy) Option {
	return func(c *config) { cp := pol; c.params.Retry = &cp }
}

// WithBreaker arms the per-target circuit breaker: after enough
// consecutive transient failures towards one rank, further gets to it
// fail fast for a cooldown, then half-open probes recover it.
func WithBreaker(pol BreakerPolicy) Option {
	return func(c *config) { cp := pol; c.params.Breaker = &cp }
}

// WithFillVerification checksums every dense remote fill against the
// backend's integrity attestation: silently corrupted payloads are
// rejected (and retried under WithRetry) instead of delivered or cached.
func WithFillVerification() Option { return func(c *config) { c.params.VerifyFills = true } }

// WithStaleWhenOpen defers the Transparent mode's epoch-closure
// invalidation while any target's circuit breaker is open, serving stale
// hits instead of alternating breaker failures with cold misses — legal
// under the paper's §II weak-consistency contract. Requires WithBreaker;
// the deferred invalidation runs at the first closure with all breakers
// closed.
func WithStaleWhenOpen() Option { return func(c *config) { c.params.ServeStale = true } }

// WithLocalityAwareness makes the caching layer cost-aware (DESIGN.md
// §15) on backends that report per-target distance (the simulated
// runtime's placement model, the wire transport's measured RTT): cheap
// same-socket fills bypass admission, the eviction victim score is
// weighted by refill cost, and retry backoffs and breaker cooldowns
// scale with the target's distance class. Ignored on backends without
// locality information.
func WithLocalityAwareness() Option {
	return func(c *config) { c.params.LocalityAware = true }
}

// WithCheapFillThreshold overrides the admission-bypass cost bound of
// WithLocalityAwareness: same-socket misses whose modeled fill cost is
// below d are served direct without caching (Stats.CheapSkips). Zero
// selects the default.
func WithCheapFillThreshold(d Duration) Option {
	return func(c *config) { c.params.CheapFillThreshold = d }
}

// WithL2 attaches a node-shared second-level block cache (DESIGN.md
// §15): far-target L1 misses probe it before crossing the network, and
// their block-aligned fills are published back at epoch closure so
// sibling ranks that share the same L2 value are served from node
// memory (Stats.L2Hits, Stats.SiblingForwards). Construct one L2 per
// node with NewL2 and pass it to every rank of that node. Active in
// AlwaysCache mode only; requires a locality-reporting backend.
func WithL2(l2 *L2) Option {
	return func(c *config) { c.params.L2 = l2 }
}

// WithNotify subscribes the caching layer to the backend's notified-RMA
// extension (DESIGN.md §16): remote PutNotify writes deliver bounded
// descriptors that the cache drains at access time and epoch closure to
// invalidate — or patch in place — only the affected spans, so a
// Transparent-mode window keeps its cache across epoch boundaries
// instead of dropping everything at every closure. Queue overflow and
// out-of-order delivery degrade conservatively to blanket invalidation,
// never to stale data. Construction fails if the backend does not
// implement rma.NotifyWindow. queueCap bounds the per-rank descriptor
// queue; <= 0 selects the backend default.
func WithNotify(queueCap int) Option {
	return func(c *config) {
		c.params.NotifyTargeted = true
		c.params.NotifyQueueCap = queueCap
	}
}

// WithWriteBack switches Put/PutNotify from write-through to write-back:
// contiguous writes are staged as dirty spans and flushed — sorted,
// adjacent runs coalesced into one message — at epoch closure or under
// staging pressure. Reads of a dirty span flush it first, so a rank
// always sees its own writes.
func WithWriteBack() Option { return func(c *config) { c.params.WriteBack = true } }

// Transport options (Dial only).

// WithTransport selects the socket family for Dial: "tcp" (default) or
// "unix".
func WithTransport(network string) Option {
	return func(c *config) { c.dial.Network = network }
}

// WithWindowName selects which of the daemon's windows to attach to;
// unset selects the daemon's default (first) window.
func WithWindowName(name string) Option {
	return func(c *config) { c.dial.Window = name }
}

// WithRank requests a specific rank identity from the daemon; unset (or
// RankAuto) lets the daemon assign the next free one.
func WithRank(rank int) Option {
	return func(c *config) { c.dial.Rank = rank }
}

// WithWorld declares how many client processes participate in the
// window's world — the population Fence rendezvouses. All clients (or
// the daemon's config) must agree.
func WithWorld(n int) Option {
	return func(c *config) { c.dial.World = n }
}

// WithPoolSize caps the idle socket connections kept for reuse.
func WithPoolSize(n int) Option {
	return func(c *config) { c.dial.PoolSize = n }
}

// WithDialTimeout bounds connection establishment and the handshake.
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) { c.dial.DialTimeout = d }
}

// WithFrameTap installs a hook observing (and possibly mutating) every
// raw inbound wire frame before checksum verification — the chaos hook:
// a tap that flips a bit produces genuine on-the-wire corruption, which
// the frame checksum rejects and WithRetry heals.
func WithFrameTap(tap func(frame []byte)) Option {
	return func(c *config) { c.dial.FrameTap = tap }
}

// Window is a caching-enabled RMA window: the public handle combining a
// raw window with its CLaMPI layer. All RMA and synchronization calls of
// the underlying window are available; Get is transparently cached.
type Window struct {
	win   rma.Window
	cache *core.Cache
}

// Wrap attaches a caching layer to an existing window — any rma.Window
// implementation, simulated or wire. The window's InfoKey entry, if
// present, overrides the mode selected by options.
func Wrap(win RMA, opts ...Option) (*Window, error) {
	cfg := applyOptions(opts)
	c, err := core.New(win, cfg.params)
	if err != nil {
		return nil, err
	}
	return &Window{win: win, cache: c}, nil
}

// Dial connects to a clampi-serve daemon at addr (host:port for tcp, a
// socket path with WithTransport("unix")) and returns a caching window
// over the connection — the same Window type, same options, same
// semantics as the simulated constructors; only the transport differs.
// The daemon hosts the region bytes; this process caches them.
//
//	w, err := clampi.Dial("127.0.0.1:9021",
//	        clampi.WithMode(clampi.AlwaysCache),
//	        clampi.WithRetry(clampi.DefaultRetryPolicy()))
//
// Free releases the connections.
func Dial(addr string, opts ...Option) (*Window, error) {
	cfg := applyOptions(opts)
	cfg.dial.Addr = addr
	win, err := wire.Open(cfg.dial, nil)
	if err != nil {
		return nil, err
	}
	c, err := core.New(win, cfg.params)
	if err != nil {
		win.Free()
		return nil, err
	}
	return &Window{win: win, cache: c}, nil
}

// Serve starts a clampi-serve daemon in-process: it binds
// cfg.Network/cfg.Addr and exposes cfg.Windows to wire clients until
// Shutdown. cmd/clampi-serve is a flag-parsing shell around this call.
func Serve(cfg ServeConfig) (*Server, error) { return wire.Serve(cfg) }

// Wire-transport server types (see internal/wire and cmd/clampi-serve).
type (
	// ServeConfig configures Serve: listen address, exposed windows,
	// world size, metrics registry.
	ServeConfig = wire.ServeConfig
	// Server is a running daemon; stop it with Shutdown.
	Server = wire.Server
	// WindowSpec is one window a Server exposes: a name and its regions.
	WindowSpec = wire.WindowSpec
)

// MakeRegions builds n zero-filled regions of size bytes each — the
// symmetric-window shape for ServeConfig.Windows.
var MakeRegions = wire.MakeRegions

// RankAuto (as WithRank's argument) requests daemon-assigned rank
// identity.
const RankAuto = wire.RankAuto

// Create is a convenience constructor for the simulated path:
// collectively creates a window exposing region and wraps it.
// Equivalent to r.WinCreate + Wrap.
func Create(r *Rank, region []byte, info Info, opts ...Option) (*Window, error) {
	return Wrap(r.WinCreate(region, info), opts...)
}

// Allocate collectively creates a window of size bytes per rank and wraps
// it, returning the caching window and the local region.
func Allocate(r *Rank, size int, info Info, opts ...Option) (*Window, []byte, error) {
	win, local := r.WinAllocate(size, info)
	w, err := Wrap(win, opts...)
	if err != nil {
		return nil, nil, err
	}
	return w, local, nil
}

// Get reads count elements of dtype from target's region at byte
// displacement disp into dst, serving from the cache when possible. As
// with MPI_Get, dst is valid only after the next Flush/Unlock.
func (w *Window) Get(dst []byte, dtype Datatype, count, target, disp int) error {
	return w.cache.Get(dst, dtype, count, target, disp)
}

// GetBytes is shorthand for Get with a contiguous byte range.
func (w *Window) GetBytes(dst []byte, target, disp int) error {
	return w.cache.Get(dst, Byte, len(dst), target, disp)
}

// GetOp is one operation of a batched get; see GetBatch.
type GetOp = core.GetOp

// GetBatch issues many gets in one call with the semantics of individual
// Get calls (destinations valid after the next Flush/Unlock). Hits are
// served locally; the remaining misses are sorted per target and
// adjacent or overlapping ranges are coalesced into one remote message
// each, so a batch of k neighbouring misses pays one message overhead
// instead of k. Disable coalescing with WithoutCoalescing.
func (w *Window) GetBatch(ops []GetOp) error { return w.cache.GetBatch(ops) }

// GetUncached bypasses the caching layer for one operation — the "special
// get call" extension the paper sketches in §III-A as an alternative to
// the two-window idiom. The fetched data neither hits nor populates the
// cache.
func (w *Window) GetUncached(dst []byte, dtype Datatype, count, target, disp int) error {
	return w.win.Get(dst, dtype, count, target, disp)
}

// Put writes src to target's region. By default it writes through; with
// WithWriteBack the span is staged dirty and flushed coalesced at epoch
// closure. Cached entries of this origin overlapping the written range
// are patched in place when the write exactly covers them
// (Stats.WriteHits) and invalidated otherwise, so a process never reads
// its own stale writes back through the cache. Writes by *other*
// processes are the application's responsibility unless the window uses
// notified writes (see PutNotify and WithNotify).
func (w *Window) Put(src []byte, dtype Datatype, count, target, disp int) error {
	return w.cache.Put(src, dtype, count, target, disp)
}

// PutNotify is Put plus a notification (DESIGN.md §16): the backend
// delivers a bounded descriptor of the written span — tagged with tag —
// to every other rank, and ranks that subscribed with WithNotify drain
// those descriptors to invalidate or patch exactly the affected cached
// spans instead of dropping their whole cache at the next epoch
// closure. Requires a backend implementing rma.NotifyWindow
// (ErrNoNotify otherwise).
func (w *Window) PutNotify(src []byte, dtype Datatype, count, target, disp int, tag uint32) error {
	return w.cache.PutNotify(src, dtype, count, target, disp, tag)
}

// NotifyQueueDepth returns the number of delivered but not yet drained
// notification descriptors (0 when not subscribed) — the queue-depth
// gauge behind the obsv metric.
func (w *Window) NotifyQueueDepth() int { return w.cache.NotifyQueueDepth() }

// InvalidateRange drops cached entries of target overlapping the byte
// range [disp, disp+size), returning how many were dropped. Useful when
// the application knows a remote region changed (e.g. after a
// notification) without invalidating the whole cache.
func (w *Window) InvalidateRange(target, disp, size int) int {
	return w.cache.InvalidateRange(target, disp, size)
}

// Prefetch warms the cache with a remote range without delivering data to
// the application; a later Get of the range (in a subsequent epoch) is a
// pure local hit. Extension beyond the paper.
func (w *Window) Prefetch(target, disp, size int) error {
	return w.cache.Prefetch(target, disp, size)
}

// Lock opens a passive-target epoch towards target with a shared lock.
func (w *Window) Lock(target int) error { return w.win.Lock(target) }

// LockWithType opens a passive-target epoch with an explicit lock type;
// LockExclusive blocks until all other holders of the target release.
func (w *Window) LockWithType(typ LockType, target int) error {
	return w.win.LockWithType(typ, target)
}

// LockAll opens a passive-target epoch towards all ranks.
func (w *Window) LockAll() error { return w.win.LockAll() }

// Flush completes outstanding operations towards target and closes the
// current access epoch (gets issued before it become valid).
func (w *Window) Flush(target int) error { return w.win.Flush(target) }

// FlushAll completes all outstanding operations and closes the epoch.
func (w *Window) FlushAll() error { return w.win.FlushAll() }

// Unlock completes operations towards target and ends the epoch.
func (w *Window) Unlock(target int) error { return w.win.Unlock(target) }

// UnlockAll ends a lock-all epoch.
func (w *Window) UnlockAll() error { return w.win.UnlockAll() }

// Fence is the active-target collective synchronization.
func (w *Window) Fence() error { return w.win.Fence() }

// Post opens an exposure epoch towards the given origins
// (MPI_Win_post; generalized active-target synchronization).
func (w *Window) Post(origins []int) error { return w.win.Post(origins) }

// Start opens an access epoch towards the given targets (MPI_Win_start),
// blocking until each has posted.
func (w *Window) Start(targets []int) error { return w.win.Start(targets) }

// Complete closes the access epoch opened by Start (MPI_Win_complete);
// like Flush and Unlock, it is an epoch-closure event for the cache.
func (w *Window) Complete() error { return w.win.Complete() }

// Wait closes the exposure epoch opened by Post (MPI_Win_wait).
func (w *Window) Wait() error { return w.win.Wait() }

// Accumulate combines src into target's region with op (MPI_Accumulate).
// Like Put, it invalidates the origin-local cached entries overlapping
// the written range before writing.
func (w *Window) Accumulate(src []byte, dtype Datatype, count, target, disp int, op Op) error {
	w.cache.InvalidateRange(target, disp, datatype.Span(dtype, count))
	return w.win.Accumulate(src, dtype, count, target, disp, op)
}

// Free collectively releases the window.
func (w *Window) Free() error { return w.win.Free() }

// Invalidate drops all cache entries (the CLAMPI_Invalidate call of the
// paper's user-defined mode).
func (w *Window) Invalidate() { w.cache.Invalidate() }

// Stats returns a snapshot of the caching counters.
func (w *Window) Stats() Stats { return w.cache.Stats() }

// DistanceStats returns the per-distance-class breakdown of this
// window's cache activity — empty unless the backend reports locality
// (see WithLocalityAwareness). Index with rma-style distance classes 0
// (same process) through 4 (other group).
func (w *Window) DistanceStats() []DistanceStats { return w.cache.DistanceStats() }

// LastAccess returns the classification of the most recent Get.
func (w *Window) LastAccess() Access { return w.cache.LastAccess() }

// Mode returns the operational mode in effect.
func (w *Window) Mode() Mode { return w.cache.Mode() }

// IndexSlots returns the current |I_w|.
func (w *Window) IndexSlots() int { return w.cache.IndexSlots() }

// StorageBytes returns the current |S_w|.
func (w *Window) StorageBytes() int { return w.cache.StorageBytes() }

// Occupancy returns the fraction of the cache buffer holding entries.
func (w *Window) Occupancy() float64 { return w.cache.Occupancy() }

// CachedEntries returns the number of entries currently cached.
func (w *Window) CachedEntries() int { return w.cache.CachedEntries() }

// Local returns this rank's exposed region.
func (w *Window) Local() []byte { return w.win.Local() }

// Raw returns the underlying non-caching window (gets through it bypass
// the cache — the two-window idiom of paper §III-A).
func (w *Window) Raw() RMA { return w.win }
