// Distributed triangle counting over RMA, with and without caching.
//
// This example reproduces the structure of the paper's Local Clustering
// Coefficient workload (§IV-C) using only the public API: a graph's
// adjacency lists are partitioned over the ranks and exposed through RMA
// windows; computing the clustering coefficient of a vertex requires
// fetching the adjacency list of each of its neighbours. Because popular
// vertices appear in many adjacency lists, the same list is fetched over
// and over — exactly the reuse CLaMPI converts into local copies.
//
// The graph window never changes, so it is created in always-cache mode
// via the MPI_Info key, with zero changes to the algorithm itself.
//
// Run with: go run ./examples/lcc
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"clampi"
)

const (
	numVertices = 1 << 10
	avgDegree   = 16
	ranks       = 4
)

// buildGraph creates a random preferential-attachment-flavoured graph as
// sorted adjacency lists.
func buildGraph() [][]int32 {
	rng := rand.New(rand.NewSource(7))
	adj := make(map[int32]map[int32]bool, numVertices)
	for v := int32(0); v < numVertices; v++ {
		adj[v] = map[int32]bool{}
	}
	for v := int32(1); v < numVertices; v++ {
		for d := 0; d < avgDegree/2; d++ {
			// Skewed choice: low ids become hubs.
			u := int32(rng.Intn(int(v)+1)) * int32(rng.Intn(int(v)+1)) / (v + 1)
			if u != v {
				adj[v][u] = true
				adj[u][v] = true
			}
		}
	}
	out := make([][]int32, numVertices)
	for v := int32(0); v < numVertices; v++ {
		for u := range adj[v] {
			out[v] = append(out[v], u)
		}
		sortInt32(out[v])
	}
	return out
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// layout block-partitions vertices and packs each rank's adjacency lists
// into a byte region; offs[v] is the byte offset of v's list within its
// owner's region.
func layout(adj [][]int32, p int) (owner []int, offs []int, regions [][]byte) {
	owner = make([]int, numVertices)
	offs = make([]int, numVertices)
	regions = make([][]byte, p)
	per := (numVertices + p - 1) / p
	for rank := 0; rank < p; rank++ {
		var region []byte
		for v := rank * per; v < (rank+1)*per && v < numVertices; v++ {
			owner[v] = rank
			offs[v] = len(region)
			for _, u := range adj[v] {
				region = append(region, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
			}
		}
		regions[rank] = region
	}
	return owner, offs, regions
}

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	adj := buildGraph()
	owner, offs, regions := layout(adj, ranks)

	for _, cached := range []bool{false, true} {
		label := "uncached (foMPI)"
		info := clampi.Info{}
		if cached {
			label = "CLaMPI always-cache"
			info[clampi.InfoKey] = "always-cache"
		}
		times := make([]int64, ranks)
		triangles := make([]int64, ranks)
		err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
			opts := []clampi.Option{clampi.WithStorageBytes(8 << 20)}
			if col != nil {
				opts = append(opts, clampi.WithObserver(col))
			}
			w, err := clampi.Create(r, regions[r.ID()], info, opts...)
			if err != nil {
				return err
			}
			defer w.Free()
			if err := w.LockAll(); err != nil {
				return err
			}
			t0 := r.Clock().Now()
			buf := make([]byte, 4*numVertices)
			per := (numVertices + ranks - 1) / ranks
			var tri int64
			for v := r.ID() * per; v < (r.ID()+1)*per && v < numVertices; v++ {
				for _, u := range adj[v] {
					// Fetch adj(u) from its owner (cached or not).
					n := len(adj[u]) * 4
					if n == 0 {
						continue
					}
					if err := w.GetBytes(buf[:n], owner[u], offs[u]); err != nil {
						return err
					}
					if err := w.FlushAll(); err != nil {
						return err
					}
					tri += int64(intersectPacked(adj[v], buf[:n]))
				}
			}
			times[r.ID()] = int64(r.Clock().Now() - t0)
			triangles[r.ID()] = tri
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if cached && r.ID() == 0 {
				s := w.Stats()
				fmt.Printf("  rank 0 cache: %d gets, %.0f%% hits\n", s.Gets, 100*s.HitRate())
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		var total, tri int64
		for i := range times {
			total += times[i]
			tri += triangles[i]
		}
		// Each triangle is counted 6 times (3 vertices × 2 directions).
		fmt.Printf("%-20s total virtual time %.2f ms, triangles %d\n", label, float64(total)/1e6, tri/6)
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// intersectPacked counts common elements of a sorted id list and a packed
// little-endian int32 buffer (also sorted).
func intersectPacked(a []int32, packed []byte) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(packed) {
		u := int32(packed[j]) | int32(packed[j+1])<<8 | int32(packed[j+2])<<16 | int32(packed[j+3])<<24
		switch {
		case a[i] < u:
			i++
		case a[i] > u:
			j += 4
		default:
			n++
			i++
			j += 4
		}
	}
	return n
}
