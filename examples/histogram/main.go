// Distributed histogram: accumulates and exclusive locks alongside
// cached gets.
//
// Ranks draw samples and bin them into a histogram that is block-
// partitioned over all ranks. Counting uses MPI_Accumulate(SUM) — writes
// need no caching (paper §II) and atomically combine concurrent updates.
// After the counting phase the histogram is read-only, so the analysis
// phase (every rank scans the full histogram to find the global mode,
// re-reading popular ranges) runs through a caching window in
// always-cache mode. A final exclusive-lock epoch updates a shared
// "winner" record — a read-modify-write that must not race.
//
// Run with: go run ./examples/histogram
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"clampi"
)

const (
	ranks   = 4
	bins    = 256
	samples = 20000
	rounds  = 3 // analysis passes (reuse for the cache)
)

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	binsPerRank := bins / ranks
	err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
		// Region: this rank's histogram block (8 B per bin) plus, on
		// rank 0, a (mode, count) winner record at the end.
		extra := 0
		if r.ID() == 0 {
			extra = 16
		}
		opts := []clampi.Option{clampi.WithMode(clampi.AlwaysCache)}
		if col != nil {
			opts = append(opts, clampi.WithObserver(col))
		}
		w, local, err := clampi.Allocate(r, binsPerRank*8+extra, nil, opts...)
		if err != nil {
			return err
		}
		defer w.Free()

		// --- Phase 1: counting, via accumulates. ---
		rng := rand.New(rand.NewSource(int64(r.ID()) + 5))
		if err := w.LockAll(); err != nil {
			return err
		}
		one := make([]byte, 8)
		one[0] = 1 // little-endian int64(1)
		for i := 0; i < samples; i++ {
			// Roughly normal samples over the bins.
			v := (rng.NormFloat64()*0.15 + 0.5) * bins
			bin := int(v)
			if bin < 0 {
				bin = 0
			}
			if bin >= bins {
				bin = bins - 1
			}
			owner := bin / binsPerRank
			disp := (bin % binsPerRank) * 8
			if err := w.Accumulate(one, clampi.Int64, 1, owner, disp, clampi.OpSum); err != nil {
				return err
			}
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		r.Barrier() // counting done: histogram is now read-only

		// --- Phase 2: analysis, via cached gets. ---
		if err := w.LockAll(); err != nil {
			return err
		}
		buf := make([]byte, binsPerRank*8)
		bestBin, bestCount := 0, int64(-1)
		for round := 0; round < rounds; round++ {
			for owner := 0; owner < r.Size(); owner++ {
				if err := w.GetBytes(buf, owner, 0); err != nil {
					return err
				}
				if err := w.FlushAll(); err != nil {
					return err
				}
				for b := 0; b < binsPerRank; b++ {
					c := int64LE(buf[b*8:])
					if c > bestCount {
						bestCount = c
						bestBin = owner*binsPerRank + b
					}
				}
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}

		// --- Phase 3: publish the winner under an exclusive lock. ---
		if err := w.LockWithType(clampi.LockExclusive, 0); err != nil {
			return err
		}
		rec := make([]byte, 16)
		if err := w.GetBytes(rec, 0, binsPerRank*8); err != nil {
			return err
		}
		if err := w.Flush(0); err != nil {
			return err
		}
		if bestCount > int64LE(rec[8:]) {
			putInt64LE(rec, int64(bestBin))
			putInt64LE(rec[8:], bestCount)
			if err := w.Put(rec, clampi.Byte, 16, 0, binsPerRank*8); err != nil {
				return err
			}
		}
		if err := w.Unlock(0); err != nil {
			return err
		}
		r.Barrier()

		if r.ID() == 0 {
			s := w.Stats()
			fmt.Printf("mode: bin %d with %d samples  (analysis hit rate %.0f%%)\n",
				int64LE(local[binsPerRank*8:]), int64LE(local[binsPerRank*8+8:]), 100*s.HitRate())
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func int64LE(b []byte) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}

func putInt64LE(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}
