// A miniature distributed N-body step using the user-defined caching mode
// (the paper's Listing 1 pattern).
//
// Each rank owns a block of bodies, exposed through an RMA window as
// packed (x, y, z, mass) records. Computing the force on a local body
// requires reading every remote body — so each remote block is read once
// per local body, a reuse factor equal to the local body count. The
// bodies only move after all forces are computed: the window is read-only
// for the whole force phase, gets are cached across epochs, and the cache
// is invalidated explicitly before the integration step, exactly like
// CLAMPI_Invalidate in the paper.
//
// Run with: go run ./examples/nbody
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"clampi"
)

const (
	ranks        = 4
	bodiesPerPE  = 64
	recordBytes  = 32 // x, y, z, mass float64
	steps        = 3
	dt           = 1e-3
	softening    = 1e-3
	fetchPerCall = 8 // bodies fetched per get
)

type body struct{ x, y, z, m, vx, vy, vz float64 }

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
		rng := rand.New(rand.NewSource(int64(r.ID()) + 1))
		local := make([]body, bodiesPerPE)
		for i := range local {
			local[i] = body{x: rng.Float64(), y: rng.Float64(), z: rng.Float64(), m: 1.0 / (ranks * bodiesPerPE)}
		}

		region := make([]byte, bodiesPerPE*recordBytes)
		opts := []clampi.Option{
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithStorageBytes(1 << 20),
		}
		if col != nil {
			opts = append(opts, clampi.WithObserver(col))
		}
		w, err := clampi.Create(r, region, nil, opts...)
		if err != nil {
			return err
		}
		defer w.Free()

		buf := make([]byte, fetchPerCall*recordBytes)
		for step := 0; step < steps; step++ {
			// Publish current positions into the local window region.
			for i, b := range local {
				putF64(region[i*recordBytes:], b.x)
				putF64(region[i*recordBytes+8:], b.y)
				putF64(region[i*recordBytes+16:], b.z)
				putF64(region[i*recordBytes+24:], b.m)
			}
			r.Barrier() // everyone's region is ready

			if err := w.LockAll(); err != nil {
				return err
			}
			t0 := r.Clock().Now()
			for i := range local {
				var ax, ay, az float64
				for q := 0; q < r.Size(); q++ {
					for blk := 0; blk < bodiesPerPE; blk += fetchPerCall {
						if err := w.GetBytes(buf, q, blk*recordBytes); err != nil {
							return err
						}
						if err := w.FlushAll(); err != nil {
							return err
						}
						for k := 0; k < fetchPerCall; k++ {
							bx := getF64(buf[k*recordBytes:])
							by := getF64(buf[k*recordBytes+8:])
							bz := getF64(buf[k*recordBytes+16:])
							bm := getF64(buf[k*recordBytes+24:])
							dx, dy, dz := bx-local[i].x, by-local[i].y, bz-local[i].z
							d2 := dx*dx + dy*dy + dz*dz + softening*softening
							inv := bm / (d2 * math.Sqrt(d2))
							ax += dx * inv
							ay += dy * inv
							az += dz * inv
						}
					}
				}
				local[i].vx += ax * dt
				local[i].vy += ay * dt
				local[i].vz += az * dt
			}
			forceTime := r.Clock().Now() - t0

			// Read-only phase over: invalidate before bodies move
			// (the paper's user-defined mode, Listing 1).
			w.Invalidate()
			if err := w.UnlockAll(); err != nil {
				return err
			}

			for i := range local {
				local[i].x += local[i].vx * dt
				local[i].y += local[i].vy * dt
				local[i].z += local[i].vz * dt
			}
			if r.ID() == 0 {
				s := w.Stats()
				fmt.Printf("step %d: force phase %-12v  hit rate %.0f%%  invalidations %d\n",
					step, forceTime, 100*s.HitRate(), s.Invalidations)
			}
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
