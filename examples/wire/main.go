// Wire transport demo: the caching stack over a real socket.
//
// The program starts an in-process clampi-serve daemon on a loopback
// listener, then dials it back with clampi.Dial — the same connection
// API a separate client process would use against a standalone
// `clampi-serve` daemon. The cache layers over the wire window exactly
// as it layers over the simulated one: first read of a block is a miss
// (a framed RPC over the socket), repeats are local hits.
//
// Run with: go run ./examples/wire
//
// To split it across real processes instead, start the daemon yourself:
//
//	clampi-serve -listen 127.0.0.1:9723 -ranks 4 -size 1048576 -fill pattern
//
// and point -addr at it:
//
//	go run ./examples/wire -addr 127.0.0.1:9723 -rank 0
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"clampi"
)

func main() {
	addr := flag.String("addr", "", "daemon address; empty starts an in-process server on a loopback port")
	rank := flag.Int("rank", -1, "client rank; -1 lets the daemon assign one")
	flag.Parse()

	const (
		ranks      = 4
		regionSize = 1 << 20
	)

	target := *addr
	// Dial with the same caching options Create takes: the cache cannot
	// tell the transports apart. Against an external daemon the client
	// attaches to its default window; the self-hosted server names one.
	opts := []clampi.Option{
		clampi.WithMode(clampi.AlwaysCache),
		clampi.WithStorageBytes(4 << 20),
		clampi.WithRank(*rank),
		clampi.WithRetry(clampi.DefaultRetryPolicy()),
	}
	if target == "" {
		// No daemon given: host one ourselves, exactly like
		// cmd/clampi-serve does.
		regions := clampi.MakeRegions(ranks, regionSize)
		for t := range regions {
			for i := range regions[t] {
				regions[t][i] = byte(t + i)
			}
		}
		srv, err := clampi.Serve(clampi.ServeConfig{
			Network: "tcp",
			Addr:    "127.0.0.1:0",
			Windows: []clampi.WindowSpec{{Name: "demo", Regions: regions}},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown(2 * time.Second)
		target = srv.Addr().String()
		opts = append(opts, clampi.WithWindowName("demo"))
		fmt.Printf("in-process clampi-serve listening on %s\n", target)
	}

	w, err := clampi.Dial(target, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Free()

	ep := w.Raw().Endpoint()
	fmt.Printf("connected as rank %d of %d\n", ep.ID(), ep.Size())

	if err := w.LockAll(); err != nil {
		log.Fatal(err)
	}
	neighbour := (ep.ID() + 1) % ep.Size()
	buf := make([]byte, 64<<10)

	// First read: a miss — a framed get RPC over the socket, its wall
	// latency charged to the window's virtual clock.
	t0 := ep.Clock().Now()
	if err := w.GetBytes(buf, neighbour, 0); err != nil {
		log.Fatal(err)
	}
	if err := w.FlushAll(); err != nil {
		log.Fatal(err)
	}
	miss := ep.Clock().Now() - t0

	// Second read: a hit — no frame leaves the process.
	t0 = ep.Clock().Now()
	if err := w.GetBytes(buf, neighbour, 0); err != nil {
		log.Fatal(err)
	}
	if err := w.FlushAll(); err != nil {
		log.Fatal(err)
	}
	hit := ep.Clock().Now() - t0

	if err := w.UnlockAll(); err != nil {
		log.Fatal(err)
	}

	s := w.Stats()
	fmt.Printf("rank %d: miss %-12v hit %-12v speedup %5.1fx (gets=%d hits=%d, %dB over the wire)\n",
		ep.ID(), miss, hit, float64(miss)/float64(hit), s.Gets, s.Hits, s.BytesFromNetwork)
}
