// Adaptive parameter selection in action (paper §III-E).
//
// The cache is deliberately created with a far-too-small hash table and
// memory buffer for its workload. With the fixed strategy that
// configuration thrashes; with the adaptive strategy CLaMPI observes the
// conflict and capacity rates at runtime and grows |I_w| and |S_w| until
// the working set fits, paying one cache invalidation per adjustment.
// The program prints the parameter trajectory and the resulting times.
//
// Run with: go run ./examples/adaptive
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"clampi"
)

const (
	distinct  = 512   // distinct remote blocks in the working set
	blockSize = 2048  // bytes per block
	total     = 10000 // gets issued
)

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	for _, adaptive := range []bool{false, true} {
		label := "fixed   "
		opts := []clampi.Option{
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithIndexSlots(64),         // ~8x too small
			clampi.WithStorageBytes(64 << 10), // ~16x too small
			clampi.WithSeed(1),
		}
		if adaptive {
			label = "adaptive"
			opts = append(opts, clampi.WithAdaptive())
		}
		if col != nil {
			opts = append(opts, clampi.WithObserver(col))
		}
		err := clampi.Run(2, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
			w, _, err := clampi.Allocate(r, distinct*blockSize, nil, opts...)
			if err != nil {
				return err
			}
			defer w.Free()
			if r.ID() != 0 {
				r.Barrier()
				return nil
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(3))
			buf := make([]byte, blockSize)
			t0 := r.Clock().Now()
			for i := 0; i < total; i++ {
				// Zipf-flavoured block choice: strong reuse.
				blk := rng.Intn(distinct)
				if rng.Intn(4) > 0 {
					blk = rng.Intn(distinct / 8)
				}
				if err := w.GetBytes(buf, 1, blk*blockSize); err != nil {
					return err
				}
				if err := w.FlushAll(); err != nil {
					return err
				}
			}
			elapsed := r.Clock().Now() - t0
			if err := w.UnlockAll(); err != nil {
				return err
			}
			s := w.Stats()
			fmt.Printf("%s: time %-12v hits %.0f%%  |I_w| 64→%-6d |S_w| 64KB→%-8d adjustments %d\n",
				label, elapsed, 100*s.HitRate(), w.IndexSlots(), w.StorageBytes(), s.Adjustments)
			r.Barrier()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}
