// Quickstart: the smallest complete CLaMPI program.
//
// Four simulated ranks each expose a 1 MB window and repeatedly read a
// block from their right neighbour. The first read of each epoch group is
// a miss (a real remote get); every further read is served from the local
// cache. The program prints the per-rank cache statistics and the
// speedup of a cached read over the uncached one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi"
)

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	const ranks = 4
	err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
		// Every rank exposes 1 MB of data through a caching window.
		region := make([]byte, 1<<20)
		for i := range region {
			region[i] = byte(r.ID() + i)
		}
		w, err := clampi.Create(r, region, nil,
			clampi.WithMode(clampi.AlwaysCache), // region is read-only
			clampi.WithStorageBytes(4<<20),
		)
		if err != nil {
			return err
		}
		defer w.Free()

		if err := w.LockAll(); err != nil {
			return err
		}
		neighbour := (r.ID() + 1) % r.Size()
		buf := make([]byte, 64<<10)

		// First read: a miss — data crosses the (simulated) network.
		t0 := r.Clock().Now()
		if err := w.GetBytes(buf, neighbour, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil { // buf is valid from here
			return err
		}
		miss := r.Clock().Now() - t0

		// Second read of the same data: a hit — a local memory copy.
		t0 = r.Clock().Now()
		if err := w.GetBytes(buf, neighbour, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		hit := r.Clock().Now() - t0

		if err := w.UnlockAll(); err != nil {
			return err
		}

		s := w.Stats()
		fmt.Printf("rank %d: miss %-10v hit %-10v speedup %5.1fx  (gets=%d hits=%d)\n",
			r.ID(), miss, hit, float64(miss)/float64(hit), s.Gets, s.Hits)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
