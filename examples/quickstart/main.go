// Quickstart: the smallest complete CLaMPI program.
//
// Four simulated ranks each expose a 1 MB window and repeatedly read a
// block from their right neighbour. The first read of each epoch group is
// a miss (a real remote get); every further read is served from the local
// cache. The program prints the per-rank cache statistics and the
// speedup of a cached read over the uncached one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi"
)

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	// One collector serves every rank: its registry and trace ring are
	// concurrency-safe, and events carry the emitting rank.
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	const ranks = 4
	err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
		// Every rank exposes 1 MB of data through a caching window.
		region := make([]byte, 1<<20)
		for i := range region {
			region[i] = byte(r.ID() + i)
		}
		opts := []clampi.Option{
			clampi.WithMode(clampi.AlwaysCache), // region is read-only
			clampi.WithStorageBytes(4 << 20),
		}
		if col != nil {
			opts = append(opts, clampi.WithObserver(col))
		}
		w, err := clampi.Create(r, region, nil, opts...)
		if err != nil {
			return err
		}
		defer w.Free()

		if err := w.LockAll(); err != nil {
			return err
		}
		neighbour := (r.ID() + 1) % r.Size()
		buf := make([]byte, 64<<10)

		// First read: a miss — data crosses the (simulated) network.
		t0 := r.Clock().Now()
		if err := w.GetBytes(buf, neighbour, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil { // buf is valid from here
			return err
		}
		miss := r.Clock().Now() - t0

		// Second read of the same data: a hit — a local memory copy.
		t0 = r.Clock().Now()
		if err := w.GetBytes(buf, neighbour, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		hit := r.Clock().Now() - t0

		// Batched gets: eight adjacent uncached blocks issued in one
		// call coalesce into a single remote message (one issue
		// overhead instead of eight).
		const blk = 4 << 10
		bbuf := make([]byte, 8*blk)
		ops := make([]clampi.GetOp, 8)
		for i := range ops {
			ops[i] = clampi.GetOp{
				Dst:    bbuf[i*blk : (i+1)*blk],
				Target: neighbour,
				Disp:   512<<10 + i*blk,
			}
		}
		t0 = r.Clock().Now()
		if err := w.GetBatch(ops); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil { // bbuf is valid from here
			return err
		}
		batch := r.Clock().Now() - t0

		if err := w.UnlockAll(); err != nil {
			return err
		}

		s := w.Stats()
		fmt.Printf("rank %d: miss %-10v hit %-10v speedup %5.1fx  batch8 %-10v (%.0f misses/message, gets=%d hits=%d)\n",
			r.ID(), miss, hit, float64(miss)/float64(hit), batch, s.BatchCoalesceRatio(), s.Gets, s.Hits)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}
