// Distributed PageRank with per-iteration caching — the BSP pattern the
// paper's user-defined mode targets (§III-A: "BSP-like applications
// presenting steps where no write accesses are performed towards the
// specific window").
//
// Ranks own blocks of vertices. Each iteration, every rank publishes its
// current PageRank values in its window, and then — during a read-only
// phase — fetches the values of its vertices' remote neighbours with
// one-sided gets. Hub vertices are read by many owned vertices, so the
// same 8-byte value is fetched over and over: with always-cache mode
// those repeats become local copies. The values change between
// iterations, so the cache is explicitly invalidated at the end of each
// read-only phase, exactly like CLAMPI_Invalidate in the paper's
// Listing 1.
//
// Run with: go run ./examples/pagerank
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"clampi"
)

const (
	ranks      = 4
	vertices   = 1 << 10
	avgDegree  = 12
	damping    = 0.85
	iterations = 8
)

func main() {
	mode := flag.String("mode", "fidelity", "execution mode: fidelity or throughput")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	execMode, merr := clampi.ParseExecMode(*mode)
	if merr != nil {
		log.Fatal(merr)
	}
	var col *clampi.Collector
	if *metricsOut != "" || *traceOut != "" {
		col = clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	}
	adj := buildGraph()
	owner := func(v int32) int { return int(v) * ranks / vertices }
	localBase := func(rank int) int32 { return int32(rank * vertices / ranks) }

	err := clampi.Run(ranks, clampi.RunConfig{Mode: execMode}, func(r *clampi.Rank) error {
		lo := localBase(r.ID())
		hi := localBase(r.ID() + 1)
		n := int(hi - lo)

		region := make([]byte, n*8)
		opts := []clampi.Option{
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithStorageBytes(1 << 20),
		}
		if col != nil {
			opts = append(opts, clampi.WithObserver(col))
		}
		w, err := clampi.Create(r, region, nil, opts...)
		if err != nil {
			return err
		}
		defer w.Free()

		pr := make([]float64, n)
		next := make([]float64, n)
		for i := range pr {
			pr[i] = 1.0 / vertices
		}
		buf := make([]byte, 8)

		for iter := 0; iter < iterations; iter++ {
			// Publish this iteration's values, then enter the
			// read-only phase.
			for i, v := range pr {
				putF64(region[i*8:], v/float64(len(adj[int(lo)+i])))
			}
			r.Barrier()

			if err := w.LockAll(); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				sum := 0.0
				for _, u := range adj[int(lo)+i] {
					o := owner(u)
					if o == r.ID() {
						j := int(u - lo)
						sum += pr[j] / float64(len(adj[u]))
						continue
					}
					disp := int(u-localBase(o)) * 8
					if err := w.GetBytes(buf, o, disp); err != nil {
						return err
					}
					if err := w.FlushAll(); err != nil {
						return err
					}
					sum += getF64(buf)
				}
				next[i] = (1-damping)/vertices + damping*sum
			}
			// Values are about to change: end of the read-only phase.
			w.Invalidate()
			if err := w.UnlockAll(); err != nil {
				return err
			}

			delta := 0.0
			for i := range pr {
				delta += math.Abs(next[i] - pr[i])
			}
			pr, next = next, pr
			total := r.AllreduceSum(delta)
			if r.ID() == 0 {
				s := w.Stats()
				fmt.Printf("iter %d: Δ=%.2e  hit rate %.0f%%  (%s)\n",
					iter, total, 100*s.HitRate(), shortStats(s))
			}
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if col != nil {
		if *metricsOut != "" {
			if err := clampi.WriteMetricsFile(*metricsOut, col.Registry()); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := clampi.WriteTraceFile(*traceOut, col.Ring()); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func shortStats(s clampi.Stats) string {
	return fmt.Sprintf("gets=%d invalidations=%d", s.Gets, s.Invalidations)
}

// buildGraph creates a skewed undirected graph: low vertex ids are hubs.
func buildGraph() [][]int32 {
	rng := rand.New(rand.NewSource(11))
	adj := make([][]int32, vertices)
	seen := make(map[int64]bool)
	for v := int32(1); v < vertices; v++ {
		for d := 0; d < avgDegree/2; d++ {
			u := int32(rng.Intn(int(v)+1)) * int32(rng.Intn(int(v)+1)) / (v + 1)
			if u == v {
				continue
			}
			key := int64(u)<<32 | int64(v)
			if seen[key] {
				continue
			}
			seen[key] = true
			adj[v] = append(adj[v], u)
			adj[u] = append(adj[u], v)
		}
	}
	// Guarantee no empty adjacency (PageRank's dangling-vertex handling
	// is out of scope here).
	for v := int32(0); v < vertices; v++ {
		if len(adj[v]) == 0 {
			t := (v + 1) % vertices
			adj[v] = append(adj[v], t)
			adj[t] = append(adj[t], v)
		}
	}
	return adj
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
