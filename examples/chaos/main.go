// Chaos: running a caching window over an unreliable transport.
//
// Four simulated ranks read from their right neighbour while a seeded
// fault injector drops 20% of the remote gets and corrupts another 10%.
// The resilience layer hides all of it: transparent retries with
// virtual-time backoff recover the drops, checksum verification catches
// the silent corruption and refetches, and the delivered data is
// bit-identical to a fault-free run. The same seed always injects the
// same fault sequence, so a failure found under chaos is replayable.
//
// Run with: go run ./examples/chaos [-seed 42]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"clampi"
)

func main() {
	seed := flag.Int64("seed", 42, "chaos seed (same seed = identical fault sequence)")
	flag.Parse()

	scenario := clampi.FaultScenario{
		Name:        "demo",
		DropRate:    0.20,
		CorruptRate: 0.10,
	}

	const ranks = 4
	err := clampi.Run(ranks, clampi.RunConfig{}, func(r *clampi.Rank) error {
		region := make([]byte, 256<<10)
		for i := range region {
			region[i] = byte(r.ID() ^ (i * 7))
		}

		// Decorate the raw window with the injector (per-rank seed),
		// then wrap the caching layer with the resilience stack on top.
		faulty := clampi.InjectFaults(r.WinCreate(region, nil), scenario, *seed+int64(r.ID()))
		w, err := clampi.Wrap(faulty,
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithRetry(clampi.RetryPolicy{MaxAttempts: 0}), // retry until it lands
			clampi.WithBreaker(clampi.DefaultBreakerPolicy()),
			clampi.WithFillVerification(),
		)
		if err != nil {
			return err
		}
		defer w.Free()

		if err := w.LockAll(); err != nil {
			return err
		}
		neighbour := (r.ID() + 1) % r.Size()
		const blk = 4 << 10
		got := make([]byte, blk)
		want := make([]byte, blk)
		clean := 0
		for i := 0; i < 16; i++ {
			disp := i * blk
			if err := w.GetBytes(got, neighbour, disp); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil { // got is valid from here
				return err
			}
			for j := range want {
				want[j] = byte(neighbour ^ ((disp + j) * 7))
			}
			if bytes.Equal(got, want) {
				clean++
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}

		s := w.Stats()
		fmt.Printf("rank %d: %2d/16 blocks bit-identical under chaos  (faults: %v; retries=%d corrupt-fills-caught=%d)\n",
			r.ID(), clean, faulty.Counts(), s.Retries, s.CorruptFills)
		if clean != 16 {
			return fmt.Errorf("rank %d delivered damaged data", r.ID())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all data survived the chaos — same seed replays the identical fault sequence")
}
