package clampi

import (
	"testing"
)

// TestPublicAPIQuickstart exercises the documented happy path end to end:
// wrap a window, miss, flush, hit.
func TestPublicAPIQuickstart(t *testing.T) {
	err := Run(4, RunConfig{}, func(r *Rank) error {
		region := make([]byte, 4096)
		for i := range region {
			region[i] = byte(r.ID() + i)
		}
		w, err := Create(r, region, nil, WithMode(AlwaysCache), WithSeed(1))
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.LockAll(); err != nil {
			return err
		}
		target := (r.ID() + 1) % r.Size()
		buf := make([]byte, 512)
		if err := w.GetBytes(buf, target, 64); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		for i, b := range buf {
			if want := byte(target + 64 + i); b != want {
				t.Errorf("rank %d byte %d: got %d want %d", r.ID(), i, b, want)
			}
		}
		// Repeat: full hit.
		if err := w.GetBytes(buf, target, 64); err != nil {
			return err
		}
		if a := w.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("repeat access = %+v, want hit", a)
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if s := w.Stats(); s.Gets != 2 || s.Hits != 1 {
			t.Errorf("stats = %+v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocateAndOptions(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 1024, nil,
			WithMode(AlwaysCache),
			WithIndexSlots(128),
			WithStorageBytes(1<<16),
			WithScheme(SchemeTemporal),
			WithSampleSize(8),
			WithSeed(3),
		)
		if err != nil {
			return err
		}
		defer w.Free()
		if len(local) != 1024 || len(w.Local()) != 1024 {
			t.Errorf("local region %d/%d bytes", len(local), len(w.Local()))
		}
		if w.IndexSlots() != 128 {
			t.Errorf("IndexSlots = %d", w.IndexSlots())
		}
		if w.StorageBytes() != 1<<16 {
			t.Errorf("StorageBytes = %d", w.StorageBytes())
		}
		if w.Mode() != AlwaysCache {
			t.Errorf("Mode = %v", w.Mode())
		}
		if w.Raw() == nil {
			t.Errorf("Raw() nil")
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithParamsComposition(t *testing.T) {
	err := Run(1, RunConfig{}, func(r *Rank) error {
		base := Params{IndexSlots: 256, StorageBytes: 1 << 14, Mode: AlwaysCache}
		w, _, err := Allocate(r, 64, nil, WithParams(base), WithIndexSlots(512))
		if err != nil {
			return err
		}
		defer w.Free()
		if w.IndexSlots() != 512 {
			t.Errorf("later option did not win: %d", w.IndexSlots())
		}
		if w.StorageBytes() != 1<<14 {
			t.Errorf("base param lost: %d", w.StorageBytes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInfoKeyOnPublicAPI(t *testing.T) {
	err := Run(1, RunConfig{}, func(r *Rank) error {
		w, _, err := Allocate(r, 64, Info{InfoKey: "always-cache"})
		if err != nil {
			return err
		}
		defer w.Free()
		if w.Mode() != AlwaysCache {
			t.Errorf("Mode = %v, want AlwaysCache from info key", w.Mode())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserDefinedModeListing1(t *testing.T) {
	// The paper's Listing 1: a loop of read-only epochs delimited by
	// Lock/Unlock, with gets cached across flushes and an explicit
	// invalidate before the final unlock.
	err := Run(2, RunConfig{}, func(r *Rank) error {
		region := make([]byte, 2048)
		for i := range region {
			region[i] = byte(i * 3)
		}
		w, err := Create(r, region, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 0 {
			peer := 1
			if err := w.Lock(peer); err != nil {
				return err
			}
			lbuf1 := make([]byte, 256)
			lbuf2 := make([]byte, 256)
			for iter := 0; iter < 5; iter++ {
				if err := w.GetBytes(lbuf1, peer, 0); err != nil {
					return err
				}
				if err := w.GetBytes(lbuf2, peer, 1024); err != nil {
					return err
				}
				if err := w.Flush(peer); err != nil { // closes epoch
					return err
				}
				for i := range lbuf1 {
					if lbuf1[i] != byte(i*3) || lbuf2[i] != byte((1024+i)*3) {
						t.Fatalf("iter %d: wrong data", iter)
					}
				}
			}
			w.Invalidate()
			if err := w.Unlock(peer); err != nil {
				return err
			}
			s := w.Stats()
			if s.Gets != 10 || s.Hits != 8 {
				t.Errorf("stats = %+v, want 10 gets / 8 hits", s)
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutPassthrough(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 256, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.LockAll(); err != nil {
			return err
		}
		if r.ID() == 0 {
			src := []byte{9, 8, 7}
			if err := w.Put(src, Byte, 3, 1, 10); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		if r.ID() == 1 {
			if local[10] != 9 || local[11] != 8 || local[12] != 7 {
				t.Errorf("put data missing: %v", local[10:13])
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTwoWindowIdiom(t *testing.T) {
	// Paper §III-A: two windows over the same memory, only one caching,
	// let the user choose per-operation caching.
	err := Run(2, RunConfig{}, func(r *Rank) error {
		region := make([]byte, 256)
		for i := range region {
			region[i] = byte(i)
		}
		cached, err := Create(r, region, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer cached.Free()
		raw := r.WinCreate(region, nil)
		defer raw.Free()

		if r.ID() == 0 {
			if err := cached.LockAll(); err != nil {
				return err
			}
			if err := raw.LockAll(); err != nil {
				return err
			}
			buf := make([]byte, 64)
			if err := cached.GetBytes(buf, 1, 0); err != nil {
				return err
			}
			if err := cached.FlushAll(); err != nil {
				return err
			}
			// The raw window never caches.
			if err := raw.Get(buf, Byte, 64, 1, 0); err != nil {
				return err
			}
			if err := raw.FlushAll(); err != nil {
				return err
			}
			if err := cached.UnlockAll(); err != nil {
				return err
			}
			if err := raw.UnlockAll(); err != nil {
				return err
			}
			if s := cached.Stats(); s.Gets != 1 {
				t.Errorf("cached window saw %d gets, want 1", s.Gets)
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDatatypeReexports(t *testing.T) {
	if Byte.Size() != 1 || Int32.Size() != 4 || Int64.Size() != 8 || Double.Size() != 8 {
		t.Fatalf("basic datatype sizes wrong")
	}
	if Bytes(100).Size() != 100 {
		t.Fatalf("Bytes re-export broken")
	}
	if Contiguous(4, Int32).Size() != 16 {
		t.Fatalf("Contiguous re-export broken")
	}
	if Vector(2, 1, 2, Byte).Size() != 2 {
		t.Fatalf("Vector re-export broken")
	}
	if Indexed([]int{2}, []int{0}, Byte).Size() != 2 {
		t.Fatalf("Indexed re-export broken")
	}
	if Struct([]Datatype{Byte}, []int{0}).Size() != 1 {
		t.Fatalf("Struct re-export broken")
	}
	if DefaultNetModel() == nil {
		t.Fatalf("DefaultNetModel nil")
	}
}
