package clampi_test

import (
	"fmt"

	"clampi"
)

// ExampleWrap shows the canonical miss-then-hit flow on a caching window.
func ExampleWrap() {
	err := clampi.Run(2, clampi.RunConfig{}, func(r *clampi.Rank) error {
		region := make([]byte, 1024)
		for i := range region {
			region[i] = byte(i)
		}
		w, err := clampi.Create(r, region, nil, clampi.WithMode(clampi.AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() != 0 {
			r.Barrier()
			return nil
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		buf := make([]byte, 16)
		_ = w.GetBytes(buf, 1, 0) // miss
		_ = w.FlushAll()
		_ = w.GetBytes(buf, 1, 0) // hit
		_ = w.UnlockAll()
		s := w.Stats()
		fmt.Printf("gets=%d hits=%d\n", s.Gets, s.Hits)
		r.Barrier()
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: gets=2 hits=1
}

// ExampleWindow_Invalidate shows the paper's user-defined mode: cache
// across a group of read-only epochs, invalidate when they end.
func ExampleWindow_Invalidate() {
	err := clampi.Run(2, clampi.RunConfig{}, func(r *clampi.Rank) error {
		w, _, err := clampi.Allocate(r, 256, clampi.Info{clampi.InfoKey: "always-cache"})
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() != 0 {
			r.Barrier()
			return nil
		}
		if err := w.Lock(1); err != nil {
			return err
		}
		buf := make([]byte, 8)
		for epoch := 0; epoch < 3; epoch++ {
			_ = w.GetBytes(buf, 1, 0)
			_ = w.Flush(1) // closes the epoch; entries persist
		}
		w.Invalidate() // the read-only phase ends
		_ = w.Unlock(1)
		s := w.Stats()
		fmt.Printf("hits=%d invalidations=%d\n", s.Hits, s.Invalidations)
		r.Barrier()
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: hits=2 invalidations=1
}

// ExampleWindow_Prefetch warms the cache ahead of use.
func ExampleWindow_Prefetch() {
	err := clampi.Run(2, clampi.RunConfig{}, func(r *clampi.Rank) error {
		w, _, err := clampi.Allocate(r, 256, nil, clampi.WithMode(clampi.AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() != 0 {
			r.Barrier()
			return nil
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		_ = w.Prefetch(1, 0, 64)
		_ = w.FlushAll()
		buf := make([]byte, 64)
		_ = w.GetBytes(buf, 1, 0)
		fmt.Printf("first get: %v\n", w.LastAccess().Type)
		_ = w.UnlockAll()
		r.Barrier()
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: first get: hitting
}
