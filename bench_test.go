// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§IV), each regenerating the figure's rows at a scale suited
// to a single-core host and printing them. The cmd/ binaries run the same
// drivers, including at the paper's full parameters (-paper).
//
//	go test -bench=Fig -benchmem
//
// The per-operation benchmarks at the bottom (BenchmarkOp*) measure the
// real CPU cost of the implementation's primitives, complementing the
// virtual-time experiment drivers.
package clampi_test

import (
	"fmt"
	"sync"
	"testing"

	"clampi"
	"clampi/internal/experiments"
	"clampi/internal/lsb"
)

// printOnce prints each figure's table a single time, however many bench
// iterations run.
var printOnce sync.Map

func report(b *testing.B, name string, tbl *lsb.Table) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", tbl)
	}
}

func BenchmarkFig1_LatencyDistance(b *testing.B) {
	sizes := []int{8, 64, 512, 4096, 32768, 131072}
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig1Latency(sizes)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig1", tbl)
	}
}

func BenchmarkFig2_NBodyReuse(b *testing.B) {
	// Paper: N = 4000 bodies, P = 4 (cmd/clampi-nbody -fig 2 -paper).
	for i := 0; i < b.N; i++ {
		rec, tbl, err := experiments.Fig2NBodyReuse(800, 4)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig2", tbl)
		b.ReportMetric(float64(rec.MaxRepetition()), "max-reps")
		b.ReportMetric(rec.ReuseFactor(), "reuse")
	}
}

func BenchmarkFig3_LCCSizes(b *testing.B) {
	// Paper: 2^16 vertices, 2^20 edges, P = 32 (clampi-lcc -fig 3 -paper).
	for i := 0; i < b.N; i++ {
		rec, tbl, err := experiments.Fig3LCCSizes(11, 8, 4, 128)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig3", tbl)
		b.ReportMetric(rec.MeanSize(), "mean-B")
	}
}

func BenchmarkFig7_AccessCosts(b *testing.B) {
	sizes := []int{256, 4096, 16384, 65536}
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.Fig7AccessCosts(sizes, 30)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig7", tbl)
		for _, r := range rows {
			if r.Size == 4096 && r.Type == "hitting" {
				b.ReportMetric(r.VsFoMPI, "hit-speedup-4K")
			}
		}
	}
}

func BenchmarkFig8_Overlap(b *testing.B) {
	sizes := []int{512, 4096, 16384, 65536}
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.Fig8Overlap(sizes)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig8", tbl)
		for _, r := range rows {
			if r.Size == 65536 && r.Type == "foMPI" {
				b.ReportMetric(r.Overlap, "foMPI-64K-overlap")
			}
		}
	}
}

func BenchmarkFig9_Adaptive(b *testing.B) {
	// Paper: N = 1K, Z = 20K, |I_w| swept 200..6400.
	const n, z = 512, 8192
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig9Adaptive([]int{n / 4, n / 2, n, 2 * n, 4 * n}, n, z)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig9", tbl)
	}
}

func BenchmarkFig10_Fragmentation(b *testing.B) {
	// Paper: Z = 100K, |I_w| = 1.5K.
	const n, z = 256, 8192
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig10Fragmentation(n, z, n*3/2, 256<<10, 20)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig10", tbl)
	}
}

func BenchmarkFig11_VictimSelection(b *testing.B) {
	// Paper: Z = 100K, M = 16, |I_w| swept 1K..32K.
	const n, z = 256, 8192
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig11VictimSelection([]int{n * 2, n * 4, n * 16}, n, z, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig11", tbl)
	}
}

func BenchmarkFig12_NBodyParams(b *testing.B) {
	// Paper: N = 20K, P = 16, |S_w| 1-4 MB (clampi-nbody -fig 12 -paper).
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig12NBodyParams(600, 4, 1024, []int{8 << 10, 64 << 10, 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig12", tbl)
	}
}

func BenchmarkFig13_NBodyStats(b *testing.B) {
	// Paper: |S_w| = 1 MB, N = 20K, P = 16.
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig13NBodyStats(600, 4, 256<<10, []int{64, 1024, 8192})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig13", tbl)
	}
}

func BenchmarkFig14_NBodyWeak(b *testing.B) {
	// Paper: 1.5K bodies/PE, P = 16..128, |S_w| = 2 MB, |I_w| = 30K.
	// The paper's cache is smaller than the remote working set from
	// P = 16 on (growing pressure is what separates the systems); the
	// scaled cache size preserves that regime.
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig14NBodyWeak(150, []int{2, 4, 8}, 2048, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig14", tbl)
	}
}

func BenchmarkFig15_LCCParams(b *testing.B) {
	// Paper: 2^20 vertices, 2^24 edges, P = 32 (clampi-lcc -fig 15 -paper).
	g := experiments.BuildLCCGraph(11, 8, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig15LCCParams(g, 4, 128, []int{32 << 10, 2 << 20}, []int{128, 8192})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig15", tbl)
	}
}

func BenchmarkFig16_LCCStats(b *testing.B) {
	// Paper: |S_w| = 64 MB, same graph as Fig 15.
	g := experiments.BuildLCCGraph(11, 8, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.Fig16LCCStats(g, 4, 128, 32<<10, []int{128, 8192})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig16", tbl)
	}
}

func BenchmarkFig17_LCCWeak(b *testing.B) {
	// Paper: scales 19..22, EF = 16, P = 16..128 (Fig 18 stats included).
	for i := 0; i < b.N; i++ {
		_, t17, t18, err := experiments.Fig17And18LCCWeak(9, 8, []int{2, 4, 8}, 96, 8192, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig17", t17)
		report(b, "fig18", t18)
	}
}

func BenchmarkFig18_LCCWeakStats(b *testing.B) {
	// Fig 18 is produced by the same runs as Fig 17; this target
	// regenerates just the stats table at a smaller scale.
	for i := 0; i < b.N; i++ {
		_, _, t18, err := experiments.Fig17And18LCCWeak(9, 8, []int{2, 4}, 64, 8192, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig18b", t18)
	}
}

// ---------------------------------------------------------------------------
// Extension benchmarks (workloads and deployments beyond the paper).
// ---------------------------------------------------------------------------

func BenchmarkExtensionBFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.ExtensionBFS(10, 8, 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "ext-bfs", tbl)
		if len(rows) == 2 && rows[1].Time > 0 {
			b.ReportMetric(float64(rows[0].Time)/float64(rows[1].Time), "speedup")
		}
	}
}

func BenchmarkExtensionPersistentWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.ExtensionPersistentWindow(300, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "ext-persistent", tbl)
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (design choices called out in DESIGN.md §6).
// ---------------------------------------------------------------------------

func BenchmarkAblationSampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.AblationSampleSize([]int{1, 4, 16, 64, 256}, 256, 4096)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-m", tbl)
	}
}

func BenchmarkAblationAllocPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.AblationAllocPolicy(256, 8192)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-alloc", tbl)
	}
}

func BenchmarkAblationCuckooWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl, err := experiments.AblationCuckooWalk([]int{4, 16, 64, 256, 1024}, 4096, 3)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-cuckoo", tbl)
	}
}

// ---------------------------------------------------------------------------
// Per-operation benchmarks (real wall-clock cost of the implementation).
// ---------------------------------------------------------------------------

// benchWorld runs fn on rank 0 of a 2-rank world with a caching window
// over a 1 MB target region.
func benchWorld(b *testing.B, opts []clampi.Option, fn func(w *clampi.Window) error) {
	b.Helper()
	err := clampi.Run(2, clampi.RunConfig{}, func(r *clampi.Rank) error {
		w, _, err := clampi.Allocate(r, 1<<20, nil, opts...)
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 0 {
			if err := w.LockAll(); err != nil {
				return err
			}
			if err := fn(w); err != nil {
				return err
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOpCachedGetHit(b *testing.B) {
	opts := []clampi.Option{clampi.WithMode(clampi.AlwaysCache), clampi.WithStorageBytes(1 << 20)}
	benchWorld(b, opts, func(w *clampi.Window) error {
		buf := make([]byte, 4096)
		if err := w.GetBytes(buf, 1, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.GetBytes(buf, 1, 0); err != nil {
				return err
			}
		}
		return w.FlushAll()
	})
}

// BenchmarkOpCachedGetHitObserved is BenchmarkOpCachedGetHit with a full
// Collector (registry + trace ring) installed. Comparing the two
// validates the acceptance criterion that the no-observer Get path stays
// within noise and quantifies the per-event cost when observing.
func BenchmarkOpCachedGetHitObserved(b *testing.B) {
	col := clampi.NewCollector(clampi.NewRegistry(), clampi.NewRing(0))
	opts := []clampi.Option{
		clampi.WithMode(clampi.AlwaysCache),
		clampi.WithStorageBytes(1 << 20),
		clampi.WithObserver(col),
	}
	benchWorld(b, opts, func(w *clampi.Window) error {
		buf := make([]byte, 4096)
		if err := w.GetBytes(buf, 1, 0); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.GetBytes(buf, 1, 0); err != nil {
				return err
			}
		}
		return w.FlushAll()
	})
}

func BenchmarkOpCachedGetMiss(b *testing.B) {
	opts := []clampi.Option{clampi.WithMode(clampi.AlwaysCache), clampi.WithStorageBytes(64 << 20), clampi.WithIndexSlots(1 << 21)}
	benchWorld(b, opts, func(w *clampi.Window) error {
		buf := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.GetBytes(buf, 1, (i%16000)*64); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			if i%16000 == 15999 {
				b.StopTimer()
				w.Invalidate()
				b.StartTimer()
			}
		}
		return nil
	})
}

func BenchmarkOpRawGet(b *testing.B) {
	benchWorld(b, nil, func(w *clampi.Window) error {
		buf := make([]byte, 4096)
		raw := w.Raw()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := raw.Get(buf, clampi.Byte, len(buf), 1, 0); err != nil {
				return err
			}
			if err := raw.FlushAll(); err != nil {
				return err
			}
		}
		return nil
	})
}

func BenchmarkOpInvalidate(b *testing.B) {
	opts := []clampi.Option{clampi.WithMode(clampi.AlwaysCache), clampi.WithIndexSlots(4096)}
	benchWorld(b, opts, func(w *clampi.Window) error {
		buf := make([]byte, 64)
		for i := 0; i < 256; i++ {
			if err := w.GetBytes(buf, 1, i*64); err != nil {
				return err
			}
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Invalidate()
		}
		return nil
	})
}
