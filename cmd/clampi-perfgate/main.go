// Command clampi-perfgate is the CI performance gate for the caching hot
// paths. It runs the op-level benchmarks (BenchmarkOp* in internal/core)
// with -benchmem and enforces two invariants against the committed
// baseline (PERF_baseline.json):
//
//   - the hit paths perform 0 allocs/op — bare (BenchmarkOpHitFull),
//     with the resilience layer armed (BenchmarkOpHitFullResilient), on
//     the shared concurrent cache's lock-free hit path both
//     single-context (BenchmarkOpSharedHitFull) and contended
//     (BenchmarkOpSharedHitParallel), and on the node-shared L2 tier
//     (BenchmarkOpL2Hit, BenchmarkOpL2SiblingForward),
//   - deterministic virtual time stays within its budget: the L1
//     full-hit path at 108 vns/op and the L2 hit paths under 400 vns/op
//     (vns/op has no host variance, so any excess is a modeled-cost
//     regression), and
//   - no benchmark's host ns/op regresses past the threshold (default
//     1.25x) over its baseline.
//
// Usage:
//
//	clampi-perfgate [-update] [-threshold 1.25] [-baseline PERF_baseline.json] [-pkg ./internal/core]
//
// -update reruns the benchmarks and rewrites the baseline file.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	VNsPerOp    float64 `json:"vns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// zeroAllocGated names the benchmarks whose hit paths must never
// allocate, regardless of the committed baseline.
var zeroAllocGated = map[string]bool{
	"BenchmarkOpHitFull":           true,
	"BenchmarkOpHitFullResilient":  true,
	"BenchmarkOpSharedHitFull":     true,
	"BenchmarkOpSharedHitParallel": true,
	"BenchmarkOpL2Hit":             true,
	"BenchmarkOpL2SiblingForward":  true,
	"BenchmarkOpNotifyDrain":       true,
}

// vnsCeiling pins deterministic virtual-time budgets: vns/op is exact
// (no host variance), so exceeding the ceiling is a modeled-cost
// regression, not noise. The L1 full-hit budget is the §III-B lookup +
// copy cost — and the notification depth probe must not move it: an
// armed subscription with an empty queue keeps the identical 108 vns —
// while the L2 budgets keep the node-shared tier well under half of an
// other-group miss (~3300 vns).
var vnsCeiling = map[string]float64{
	"BenchmarkOpHitFull":          108,
	"BenchmarkOpHitFullResilient": 108,
	"BenchmarkOpNotifyDrain":      108,
	"BenchmarkOpL2Hit":            400,
	"BenchmarkOpL2SiblingForward": 400,
}

// Baseline is the committed PERF_baseline.json schema.
type Baseline struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from this run")
	threshold := flag.Float64("threshold", 1.25, "allowed host ns/op ratio over baseline")
	baselinePath := flag.String("baseline", "PERF_baseline.json", "baseline file")
	pkg := flag.String("pkg", "./internal/core", "package holding the BenchmarkOp* set")
	benchtime := flag.String("benchtime", "0.5s", "benchtime passed to go test")
	count := flag.Int("count", 3, "benchmark repetitions; the minimum ns/op is kept")
	flag.Parse()

	results, err := runBenchmarks(*pkg, *benchtime, *count)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("perfgate: no BenchmarkOp* results parsed")
	}

	if *update {
		if err := writeBaseline(*baselinePath, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perfgate: baseline %s updated with %d benchmarks\n", *baselinePath, len(results))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		log.Fatalf("perfgate: %v (run with -update to create the baseline)", err)
	}

	failed := false
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		status := "ok"
		if zeroAllocGated[name] && r.AllocsPerOp > 0 {
			status = fmt.Sprintf("FAIL: full-hit path allocates (%.2f allocs/op, want 0)", r.AllocsPerOp)
			failed = true
		}
		if ceil, ok := vnsCeiling[name]; ok && r.VNsPerOp > ceil {
			status = fmt.Sprintf("FAIL: %.1f vns/op exceeds the %.0f vns/op budget", r.VNsPerOp, ceil)
			failed = true
		}
		if b, ok := base.Benchmarks[name]; ok && b.NsPerOp > 0 {
			ratio := r.NsPerOp / b.NsPerOp
			if ratio > *threshold {
				status = fmt.Sprintf("FAIL: %.1f ns/op is %.2fx baseline %.1f (threshold %.2fx)",
					r.NsPerOp, ratio, b.NsPerOp, *threshold)
				failed = true
			} else {
				status = fmt.Sprintf("ok (%.2fx baseline)", ratio)
			}
		} else if status == "ok" {
			status = "ok (no baseline entry)"
		}
		fmt.Printf("%-24s %10.1f ns/op %10.1f vns/op %6.2f allocs/op  %s\n",
			name, r.NsPerOp, r.VNsPerOp, r.AllocsPerOp, status)
	}
	if failed {
		os.Exit(1)
	}
}

// runBenchmarks executes the BenchmarkOp* set and parses the -benchmem
// output into per-benchmark results. Each benchmark runs `count` times
// and the minimum host ns/op is kept — scheduler noise only ever
// inflates timings, so the minimum is the stable estimator — while
// allocs/op and B/op keep the maximum to stay conservative.
func runBenchmarks(pkg, benchtime string, count int) (map[string]Result, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "^BenchmarkOp",
		"-benchmem", "-benchtime", benchtime, "-count", strconv.Itoa(count), pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("perfgate: benchmark run failed: %w\n%s", err, out.String())
	}
	results := make(map[string]Result)
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		name, r, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, dup := results[name]; dup {
			if prev.NsPerOp < r.NsPerOp {
				r.NsPerOp = prev.NsPerOp
			}
			if prev.VNsPerOp < r.VNsPerOp {
				r.VNsPerOp = prev.VNsPerOp
			}
			if prev.AllocsPerOp > r.AllocsPerOp {
				r.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > r.BytesPerOp {
				r.BytesPerOp = prev.BytesPerOp
			}
		}
		results[name] = r
	}
	return results, sc.Err()
}

// parseBenchLine parses one `go test -bench` output line of the form
//
//	BenchmarkOpHitFull-8  12039924  31.35 ns/op  108.0 vns/op  0 B/op  0 allocs/op
//
// returning the benchmark name with the -GOMAXPROCS suffix stripped.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "BenchmarkOp") {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r Result
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "vns/op":
			r.VNsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return name, r, seen
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	return b, json.Unmarshal(buf, &b)
}

func writeBaseline(path string, results map[string]Result) error {
	b := Baseline{
		Note:       "Host-time baseline for cmd/clampi-perfgate; refresh with `go run ./cmd/clampi-perfgate -update` on the CI runner class.",
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
