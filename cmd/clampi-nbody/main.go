// Command clampi-nbody regenerates the Barnes-Hut figures of the paper
// (§IV-B): the get-reuse histogram (Fig. 2), force time vs cache
// parameters (Fig. 12), access statistics (Fig. 13) and weak scaling
// (Fig. 14).
//
// Usage:
//
//	clampi-nbody [-fig all|2|12|13|14] [-paper] [-n 2000] [-p 4]
//
// -paper selects the paper's parameters (Fig. 2: N=4000, P=4; Figs
// 12-13: N=20K, P=16, |S_w| up to 4 MB; Fig. 14: 1.5K bodies/PE,
// P=16..128). Expect a long single-core run at that scale.
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi/internal/experiments"
	"clampi/internal/mpi"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 2, 12, 13 or 14")
	paper := flag.Bool("paper", false, "use the paper's full-scale parameters")
	n := flag.Int("n", 2000, "bodies N (Figs 12-13)")
	p := flag.Int("p", 4, "processing elements P (Figs 12-13)")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetExecMode(m)
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
	}

	run("2", func() error {
		nn, pp := 1000, 4
		if *paper {
			nn = 4000
		}
		_, tbl, err := experiments.Fig2NBodyReuse(nn, pp)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("12", func() error {
		nn, pp, slots := *n, *p, 1<<13
		sws := []int{64 << 10, 256 << 10, 1 << 20}
		if *paper {
			nn, pp, slots = 20000, 16, 1<<15
			sws = []int{1 << 20, 2 << 20, 4 << 20}
		}
		_, tbl, err := experiments.Fig12NBodyParams(nn, pp, slots, sws)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("13", func() error {
		nn, pp, sw := *n, *p, 256<<10
		iws := []int{256, 1 << 12, 1 << 15}
		if *paper {
			nn, pp, sw = 20000, 16, 1<<20
			iws = []int{1 << 10, 20 << 10, 1 << 17}
		}
		_, tbl, err := experiments.Fig13NBodyStats(nn, pp, sw, iws)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("14", func() error {
		perPE, slots, sw := 200, 1<<13, 512<<10
		ps := []int{2, 4, 8}
		if *paper {
			perPE, slots, sw = 1500, 30<<10, 2<<20
			ps = []int{16, 32, 64, 128}
		}
		_, tbl, err := experiments.Fig14NBodyWeak(perPE, ps, slots, sw)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})

	if err := experiments.WriteObservability(*metricsOut, *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}
}
