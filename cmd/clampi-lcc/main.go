// Command clampi-lcc regenerates the Local Clustering Coefficient figures
// of the paper (§IV-C): the transfer-size distribution (Fig. 3),
// parameter selection (Fig. 15), access statistics (Fig. 16) and weak
// scaling with its statistics (Figs. 17-18), plus the locality-tier
// comparison (-fig locality): cost-aware caching with a node-shared L2
// versus the locality-blind baseline under skewed rank placement
// (DESIGN.md §15).
//
// Usage:
//
//	clampi-lcc [-fig all|3|15|16|17|locality] [-paper] [-scale 12] [-ef 8] [-p 4]
//
// -paper selects the paper's parameters (Fig. 3: 2^16 vertices, 2^20
// edges, P=32; Figs 15-16: 2^20 vertices, 2^24 edges, P=32; Figs 17-18:
// scales 19..22, EF=16, P=16..128). Expect a very long single-core run
// at that scale.
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi/internal/experiments"
	"clampi/internal/mpi"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 3, 15, 16, 17 (includes 18) or locality")
	paper := flag.Bool("paper", false, "use the paper's full-scale parameters")
	scale := flag.Int("scale", 12, "R-MAT scale (vertices = 2^scale) for Figs 15-16")
	ef := flag.Int("ef", 8, "R-MAT edge factor")
	p := flag.Int("p", 4, "processing elements P")
	maxVerts := flag.Int("maxverts", 256, "max vertices per rank (0 = all)")
	ranksPerNode := flag.Int("rpn", 2, "ranks per node for the locality figure's skewed placement (must be < p for any inter-node traffic)")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetExecMode(m)
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
	}

	run("3", func() error {
		s, e, pp, mv := 12, 16, *p, *maxVerts
		if *paper {
			s, e, pp, mv = 16, 16, 32, 0
		}
		_, tbl, err := experiments.Fig3LCCSizes(s, e, pp, mv)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})

	run("15", func() error {
		s, e, pp, mv := *scale, *ef, *p, *maxVerts
		sws := []int{64 << 10, 1 << 20}
		iws := []int{256, 1 << 13}
		if *paper {
			s, e, pp, mv = 20, 16, 32, 0
			sws = []int{64 << 20, 128 << 20}
			iws = []int{64 << 10, 256 << 10}
		}
		g := experiments.BuildLCCGraph(s, e, 1234)
		_, tbl, err := experiments.Fig15LCCParams(g, pp, mv, sws, iws)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("16", func() error {
		s, e, pp, mv, sw := *scale, *ef, *p, *maxVerts, 64<<10
		iws := []int{256, 1 << 13}
		if *paper {
			s, e, pp, mv, sw = 20, 16, 32, 0, 64<<20
			iws = []int{64 << 10, 256 << 10}
		}
		g := experiments.BuildLCCGraph(s, e, 1234)
		_, tbl, err := experiments.Fig16LCCStats(g, pp, mv, sw, iws)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("locality", func() error {
		s, e, pp, mv := *scale, *ef, *p, *maxVerts
		if *paper {
			s, e, pp, mv = 16, 16, 32, 0
		}
		rpn := *ranksPerNode
		if rpn < 1 {
			rpn = 1
		}
		blind, aware, tbl, err := experiments.LCCLocalityCompare(s, e, pp, rpn, mv, 1<<12, 1<<18)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		fmt.Printf("locality tiers: comm %d -> %d virtual ns (%.1f%%); %d L2 hits, %d L2 fills, %d sibling forwards, %d cheap skips\n",
			blind.CommVirtualNs, aware.CommVirtualNs,
			100*float64(aware.CommVirtualNs)/float64(blind.CommVirtualNs),
			aware.L2Hits, aware.L2Fills, aware.SiblingForwards, aware.CheapSkips)
		return nil
	})
	run("17", func() error {
		base, e, mv, slots, sw := 10, *ef, *maxVerts, 1<<13, 1<<20
		ps := []int{2, 4, 8}
		if *paper {
			base, e, mv, slots, sw = 19, 16, 0, 128<<10, 128<<20
			ps = []int{16, 32, 64, 128}
		}
		_, t17, t18, err := experiments.Fig17And18LCCWeak(base, e, ps, mv, slots, sw)
		if err != nil {
			return err
		}
		fmt.Print(t17)
		fmt.Print(t18)
		return nil
	})

	if err := experiments.WriteObservability(*metricsOut, *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}
}
