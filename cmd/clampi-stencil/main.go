// Command clampi-stencil runs the 2-D Jacobi halo-exchange workload
// (DESIGN.md §16) on the simulated transport and reports virtual time,
// a bit-exact grid checksum, and the notifiable-RMA cache counters.
//
// Usage:
//
//	clampi-stencil [-ranks 4] [-rows 8] [-cols 64] [-iters 24]
//	               [-notify] [-writeback] [-mode fidelity|throughput]
//	               [-compare] [-metrics]
//
// -compare runs the workload twice — blanket epoch-invalidation
// baseline, then notification-driven targeted coherence — asserts the
// checksums are bit-identical, and prints the virtual-time win. The
// process exits non-zero if the grids diverge or (under -compare) the
// win falls below 30%, so the command doubles as a CI smoke job.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clampi/internal/mpi"
	"clampi/internal/obsv"
	"clampi/internal/stencil"
)

func main() {
	ranks := flag.Int("ranks", 4, "ranks in the 1-D row decomposition")
	rows := flag.Int("rows", 8, "owned grid rows per rank")
	cols := flag.Int("cols", 64, "grid width in cells")
	iters := flag.Int("iters", 24, "Jacobi iterations")
	notify := flag.Bool("notify", false, "use notification-driven targeted coherence instead of blanket epoch invalidation")
	writeback := flag.Bool("writeback", false, "stage edge-row publishes write-back and flush coalesced at epoch close")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	compare := flag.Bool("compare", false, "run blanket and notify modes, assert bit-identical grids, report the win")
	metrics := flag.Bool("metrics", false, "print the notifiable-RMA cache counters")
	metricsOut := flag.String("metrics-out", "", "write the run's cache metrics (including the notification queue-depth gauge) to this file (.json selects JSON, anything else Prometheus text format)")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	cfg := stencil.Config{
		Ranks:     *ranks,
		Rows:      *rows,
		Cols:      *cols,
		Iters:     *iters,
		Notify:    *notify,
		WriteBack: *writeback,
	}

	if *compare {
		base := cfg
		base.Notify = false
		bres, err := stencil.Run(base, m)
		if err != nil {
			log.Fatal(err)
		}
		ntf := cfg
		ntf.Notify = true
		nres, err := stencil.Run(ntf, m)
		if err != nil {
			log.Fatal(err)
		}
		report("blanket", bres, *metrics)
		report("notify", nres, *metrics)
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, nres); err != nil {
				log.Fatal(err)
			}
		}
		if bres.Checksum != nres.Checksum {
			fmt.Fprintf(os.Stderr, "FAIL: grids diverged (blanket %016x, notify %016x)\n",
				bres.Checksum, nres.Checksum)
			os.Exit(1)
		}
		win := 1 - float64(nres.Virtual)/float64(bres.Virtual)
		fmt.Printf("win     %5.1f%% (virtual comm time, bit-identical grids)\n", 100*win)
		if win < 0.30 {
			fmt.Fprintln(os.Stderr, "FAIL: notification-driven coherence won less than 30%")
			os.Exit(1)
		}
		return
	}

	res, err := stencil.Run(cfg, m)
	if err != nil {
		log.Fatal(err)
	}
	label := "blanket"
	if cfg.Notify {
		label = "notify"
	}
	report(label, res, *metrics)
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res); err != nil {
			log.Fatal(err)
		}
	}
}

// writeMetrics exports the run's counters — and the notification
// queue-depth gauge (the run's observed maximum) — through the obsv
// registry exporters.
func writeMetrics(path string, res stencil.Result) error {
	reg := obsv.NewRegistry()
	app := obsv.L("app", "stencil")
	obsv.PublishStats(reg, res.Stats, app)
	obsv.PublishNotifyDepth(reg, res.MaxDepth, app)
	return obsv.WriteMetricsFile(path, reg)
}

func report(label string, res stencil.Result, metrics bool) {
	fmt.Printf("%-8s checksum %016x  virtual %v\n", label, res.Checksum, res.Virtual)
	if !metrics {
		return
	}
	s := res.Stats
	fmt.Printf("  gets %d  full-hits %d  invalidations %d  net-bytes %d\n",
		s.Gets, s.FullHits, s.Invalidations, s.BytesFromNetwork)
	fmt.Printf("  notifications %d  notify-invalidations %d  notify-patches %d\n",
		s.Notifications, s.NotifyInvalidations, s.NotifyPatches)
	fmt.Printf("  write-hits %d  write-backs %d  dirty-flushes %d  max-queue-depth %d\n",
		s.WriteHits, s.WriteBacks, s.DirtyFlushes, res.MaxDepth)
}
