// Command clampi-latency regenerates Fig. 1 of the paper: RMA get
// latency per message size and process/node mapping on the modelled Cray
// Cascade network.
//
// Usage:
//
//	clampi-latency [-max 131072]
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi/internal/experiments"
)

func main() {
	maxSize := flag.Int("max", 128<<10, "largest message size in bytes")
	flag.Parse()

	var sizes []int
	for s := 8; s <= *maxSize; s *= 2 {
		sizes = append(sizes, s)
	}
	_, tbl, err := experiments.Fig1Latency(sizes)
	if err != nil {
		log.Fatalf("fig1: %v", err)
	}
	fmt.Print(tbl)
}
