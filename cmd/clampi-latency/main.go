// Command clampi-latency regenerates Fig. 1 of the paper: RMA get
// latency per message size and process/node mapping on the modelled Cray
// Cascade network.
//
// Usage:
//
//	clampi-latency [-max 131072]
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi/internal/experiments"
)

func main() {
	maxSize := flag.Int("max", 128<<10, "largest message size in bytes")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	var sizes []int
	for s := 8; s <= *maxSize; s *= 2 {
		sizes = append(sizes, s)
	}
	_, tbl, err := experiments.Fig1Latency(sizes)
	if err != nil {
		log.Fatalf("fig1: %v", err)
	}
	fmt.Print(tbl)

	if err := experiments.WriteObservability(*metricsOut, *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}
}
