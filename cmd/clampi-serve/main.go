// Command clampi-serve is the window daemon of the wire transport: it
// hosts one or more RMA window regions in its memory and exposes them to
// many concurrent client processes over the length-prefixed binary
// protocol of internal/wire (DESIGN.md §13). Clients attach with
// clampi.Dial and run the full caching stack against it — the first
// configuration where CLaMPI's batching coalesces real syscalls and the
// resilience layer faces a genuine network.
//
// The daemon is intentionally thin: flag parsing, region prefill, a
// Prometheus metrics endpoint, and SIGTERM-triggered graceful drain
// around clampi.Serve (internal/wire.Server does the actual work).
//
// Usage:
//
//	clampi-serve [-listen 127.0.0.1:9021] [-network tcp|unix]
//	             [-ranks 4] [-size 1048576] [-window default]
//	             [-world 0] [-fill zero|pattern] [-seed 42]
//	             [-metrics addr] [-drain 5s] [-v]
//
// Quickstart (two terminals):
//
//	$ clampi-serve -listen 127.0.0.1:9021 -ranks 4 -fill pattern
//	$ # in another terminal / process:
//	$ # w, _ := clampi.Dial("127.0.0.1:9021"); w.LockAll(); w.GetBytes(...)
//
// A daemon run is wall-clock by nature (it serves real sockets), so its
// latency metrics are wall-clock too — unlike the simulated drivers,
// whose timings are virtual. The //clampi:walltime annotations below
// mark exactly the lines that sample the real clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clampi/internal/obsv"
	"clampi/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9021", "listen address (host:port, or socket path with -network unix)")
	network := flag.String("network", "tcp", "socket family: tcp or unix")
	ranks := flag.Int("ranks", 4, "number of window regions (one per target rank)")
	size := flag.Int("size", 1<<20, "bytes per region")
	window := flag.String("window", "default", "window name clients select in their handshake")
	world := flag.Int("world", 0, "pin the barrier population (0: first client's declaration wins)")
	fill := flag.String("fill", "zero", "region prefill: zero, or pattern (deterministic byte pattern keyed by -seed)")
	seed := flag.Int64("seed", 42, "pattern prefill seed")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address at /metrics (empty: disabled)")
	drain := flag.Duration("drain", 5*time.Second, "graceful drain window on SIGTERM/SIGINT")
	verbose := flag.Bool("v", false, "log per-connection diagnostics")
	flag.Parse()

	regions := wire.MakeRegions(*ranks, *size)
	switch *fill {
	case "zero":
	case "pattern":
		for t, reg := range regions {
			fillPattern(reg, t, *seed)
		}
	default:
		log.Fatalf("clampi-serve: unknown -fill %q (want zero or pattern)", *fill)
	}

	reg := obsv.NewRegistry()
	cfg := wire.ServeConfig{
		Network:  *network,
		Addr:     *listen,
		Windows:  []wire.WindowSpec{{Name: *window, Regions: regions}},
		World:    *world,
		Registry: reg,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	srv, err := wire.Serve(cfg)
	if err != nil {
		log.Fatalf("clampi-serve: %v", err)
	}
	fmt.Printf("clampi-serve: window %q, %d regions x %dB, listening on %s %s\n",
		*window, *ranks, *size, *network, srv.Addr())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := obsv.WritePrometheus(w, reg); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("clampi-serve: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("clampi-serve: metrics on http://%s/metrics\n", *metricsAddr)
	}

	// Graceful drain: stop accepting, release blocked barriers, let
	// in-flight requests finish, then force-close stragglers.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("clampi-serve: %v: draining (up to %v)\n", s, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("clampi-serve: shutdown: %v", err)
	}
	if *network == "unix" {
		os.Remove(*listen)
	}
	fmt.Println("clampi-serve: bye")
}

// fillPattern writes the deterministic byte pattern clients can verify
// against: byte k of target t's region is a fixed function of (t, k,
// seed) — the same shape as the clampi-scale pattern backend.
func fillPattern(reg []byte, target int, seed int64) {
	s := int(seed)
	for i := range reg {
		reg[i] = byte(target*131 + i*31 + (i >> 8) + s)
	}
}
