// Command clampi-chaos runs the seeded fault-injection suite
// (DESIGN.md §11): every selected application (LCC, BFS, N-body) under
// every selected fault scenario, asserting that the results stay
// bit-identical to a fault-free run and that a same-seed rerun injects
// the identical fault sequence. Any failed cell makes the process exit
// non-zero, so the suite doubles as the CI chaos smoke job.
//
// Usage:
//
//	clampi-chaos [-app all|lcc|bfs|nbody] [-scenario all|drop|timeout|corrupt|outage]
//	             [-scenario-file sc.json] [-seed 42] [-p 4] [-mode fidelity|throughput]
//	             [-metrics out.prom] [-trace trace.jsonl]
//
// -scenario-file loads one custom scenario (the JSON form of
// fault.Scenario) instead of the canned suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clampi/internal/experiments"
	"clampi/internal/fault"
	"clampi/internal/mpi"
	"clampi/internal/obsv"
)

func main() {
	app := flag.String("app", "all", "application to run: all, lcc, bfs or nbody")
	scenario := flag.String("scenario", "all", "canned scenario: all, drop, timeout, corrupt or outage")
	scenarioFile := flag.String("scenario-file", "", "load a custom scenario from this JSON file (overrides -scenario)")
	seed := flag.Int64("seed", 42, "chaos seed: scenario RNGs derive from it, so a seed reproduces the exact fault sequence")
	p := flag.Int("p", 4, "processing elements P")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetExecMode(m)
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	var apps []string
	if *app != "all" {
		found := false
		for _, a := range experiments.ChaosApps() {
			if a == *app {
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown app %q (want all, lcc, bfs or nbody)", *app)
		}
		apps = []string{*app}
	}

	var scenarios []fault.Scenario
	switch {
	case *scenarioFile != "":
		sc, err := fault.LoadScenario(*scenarioFile)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = []fault.Scenario{sc}
	case *scenario != "all":
		sc, ok := fault.ByName(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q (want all, drop, timeout, corrupt or outage)", *scenario)
		}
		scenarios = []fault.Scenario{sc}
	}

	rows, tbl, err := experiments.ChaosBench(*p, *seed, apps, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl)

	if *metricsOut != "" {
		// Merge the live per-cache registries, then add one gauge set
		// per (app, scenario) cell so the chaos totals land in the same
		// export file.
		reg := experiments.MetricsSnapshot()
		for _, row := range rows {
			experiments.PublishFleetStats(reg, row.App+"/"+row.Scenario, row.Stats)
		}
		if err := obsv.WriteMetricsFile(*metricsOut, reg); err != nil {
			log.Fatalf("observability: %v", err)
		}
	}
	if err := experiments.WriteObservability("", *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}

	failed := 0
	for _, row := range rows {
		if !row.OK() {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s/%s: match=%v replay=%v (%v)\n",
				row.App, row.Scenario, row.Match, row.Replay, row.Faults)
		}
	}
	if failed > 0 {
		log.Fatalf("chaos: %d of %d cells failed", failed, len(rows))
	}
}
