// Command clampi-scale is the scale-out proof driver: thousands of
// lightweight rank contexts stream an R-MAT graph (DESIGN.md §12) and
// hammer one concurrent cache (core.Shared) with the vertex-record
// reads an LCC/BFS traversal would issue — hits lock-free, misses and
// evictions under per-shard locks. The graph is never materialized:
// each worker replays the rmat.Stream and picks out its contexts'
// edges, so a 10⁸-edge run (-scale 23 -ef 16) uses constant memory.
//
// Correctness claim: the backend is a deterministic read-only pattern,
// so caching may change where bytes come from but never what they are.
// The driver proves it the same way the mode-equivalence tests do —
// each context checksums every byte it reads, and with -verify (the
// default) the whole workload is rerun serially on a fresh cache; the
// per-context checksums must match bit for bit.
//
// On a single-core host (GOMAXPROCS=1) the concurrent pass cannot
// demonstrate reader scaling; the driver says so and leans on the
// structural proof instead (TestSharedStructuralNonBlockingReads:
// lookups complete with every writer lock held).
//
// Usage:
//
//	clampi-scale [-scale 16] [-ef 16] [-contexts 2048] [-workers N]
//	             [-targets 16] [-shards 16] [-shardbytes 262144]
//	             [-seed 42] [-verify] [-metrics out.prom]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"clampi/internal/core"
	"clampi/internal/obsv"
	"clampi/internal/rmat"
	"clampi/internal/simtime"
)

// recordSize is the vertex record each edge endpoint read fetches — one
// cache line, matching the caching layer's storage granularity.
const recordSize = 64

func main() {
	scale := flag.Int("scale", 16, "R-MAT scale (vertices = 2^scale, edges = ef * 2^scale)")
	ef := flag.Int("ef", 16, "R-MAT edge factor")
	contexts := flag.Int("contexts", 2048, "number of rank contexts sharing the cache")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent worker goroutines")
	targets := flag.Int("targets", 16, "remote targets the vertex records are spread over")
	shards := flag.Int("shards", 16, "cache index/storage shards")
	shardBytes := flag.Int("shardbytes", 256<<10, "storage bytes per shard")
	seed := flag.Int64("seed", 42, "R-MAT and cache seed")
	verify := flag.Bool("verify", true, "rerun the workload serially and require bit-identical checksums")
	metricsOut := flag.String("metrics", "", "write cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	flag.Parse()

	edges := *ef * (1 << *scale)
	fmt.Printf("clampi-scale: %d contexts, %d workers, %d edges (scale %d, ef %d), %d targets\n",
		*contexts, *workers, edges, *scale, *ef, *targets)
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("clampi-scale: GOMAXPROCS=1 — reader scaling cannot show on one core; " +
			"non-blocking reads rest on the structural proof (lookups complete with every writer lock held)")
	}

	params := core.SharedParams{Shards: *shards, BytesPerShard: *shardBytes, Seed: *seed}

	start := time.Now() //clampi:walltime progress reporting only — results depend on virtual time alone
	conc, concStats, concVtime := runPass(*scale, *ef, *seed, *targets, *contexts, *workers, params)
	concWall := time.Since(start) //clampi:walltime progress reporting only
	fmt.Printf("concurrent pass: %v wall, %v virtual, %.1f%% hits (%d gets, %d seqlock retries)\n",
		concWall.Round(time.Millisecond), concVtime, hitRate(concStats), concStats.Gets, conc.retries)
	fmt.Printf("locality counters: %d L2 hits, %d L2 fills, %d sibling forwards, %d cheap skips\n",
		concStats.L2Hits, concStats.L2Fills, concStats.SiblingForwards, concStats.CheapSkips)

	if *metricsOut != "" {
		reg := obsv.NewRegistry()
		obsv.PublishStats(reg, concStats, obsv.L("run", "concurrent"))
		obsv.PublishSharedStats(reg, conc.cache, obsv.L("run", "concurrent"))
		if err := obsv.WriteMetricsFile(*metricsOut, reg); err != nil {
			log.Fatalf("clampi-scale: metrics: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if *verify {
		start = time.Now() //clampi:walltime progress reporting only
		serial, serialStats, _ := runPass(*scale, *ef, *seed, *targets, *contexts, 1, params)
		fmt.Printf("serial pass: %v wall, %.1f%% hits\n",
			time.Since(start).Round(time.Millisecond), hitRate(serialStats)) //clampi:walltime progress reporting only
		mismatches := 0
		for i := range conc.sums {
			if conc.sums[i] != serial.sums[i] {
				mismatches++
				if mismatches <= 5 {
					fmt.Fprintf(os.Stderr, "context %d: concurrent checksum %016x != serial %016x\n",
						i, conc.sums[i], serial.sums[i])
				}
			}
		}
		if mismatches > 0 {
			log.Fatalf("clampi-scale: %d of %d contexts returned different bytes", mismatches, *contexts)
		}
		fmt.Printf("verify: %d per-context checksums bit-identical across concurrent and serial passes\n", *contexts)
	}
}

// passResult carries what a pass produced: the cache (for gauge
// publication), per-context checksums, and total seqlock retries.
type passResult struct {
	cache   *core.Shared
	sums    []uint64
	retries uint64
}

// runPass streams the R-MAT graph through nContexts contexts over a
// fresh cache, with nWorkers goroutines each owning a contiguous block
// of contexts. Edge j belongs to context j % nContexts regardless of
// worker count, and every worker replays its own rmat.Stream, so the
// per-context request sequences — and therefore the checksums — are
// defined by (scale, ef, seed, nContexts) alone. The replay trades
// (nWorkers-1) redundant generator passes for zero cross-worker
// coordination; edge generation is a fraction of the per-edge cache
// work, and the stream keeps memory constant either way.
func runPass(scale, ef int, seed int64, targets, nContexts, nWorkers int, params core.SharedParams) (passResult, core.Stats, simtime.Duration) {
	cache, err := core.NewShared(patternFetch(targets), params)
	if err != nil {
		log.Fatalf("clampi-scale: %v", err)
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	if nWorkers > nContexts {
		nWorkers = nContexts
	}
	sums := make([]uint64, nContexts)
	stats := make([]core.Stats, nWorkers)
	vtimes := make([]simtime.Duration, nWorkers)
	perWorker := (nContexts + nWorkers - 1) / nWorkers

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * perWorker
			hi := lo + perWorker
			if hi > nContexts {
				hi = nContexts
			}
			ctxs := make([]*core.Context, hi-lo)
			for i := range ctxs {
				ctxs[i] = cache.NewContext(lo + i)
			}
			var rec [recordSize]byte
			s := rmat.NewStream(scale, ef, rmat.Graph500, seed)
			for j := 0; ; j++ {
				e, ok := s.Next()
				if !ok {
					break
				}
				ci := j % nContexts
				if ci < lo || ci >= hi {
					continue
				}
				x := ctxs[ci-lo]
				target, disp := place(int(e.V), targets)
				if err := x.Get(rec[:], target, disp); err != nil {
					log.Fatalf("clampi-scale: context %d: %v", ci, err)
				}
				sums[ci] = fnvMix(sums[ci], rec[:])
			}
			for _, x := range ctxs {
				stats[w] = stats[w].Add(x.Stats())
				vtimes[w] += x.VirtualTime()
			}
		}(w)
	}
	wg.Wait()

	var total core.Stats
	var vtotal simtime.Duration
	for w := 0; w < nWorkers; w++ {
		total = total.Add(stats[w])
		vtotal += vtimes[w]
	}
	return passResult{cache: cache, sums: sums, retries: cache.SeqlockRetries()}, total, vtotal
}

// place maps a vertex to its record's home: records are dealt
// round-robin over targets, cache-line aligned within each.
func place(v, targets int) (target, disp int) {
	return v % targets, (v / targets) * recordSize
}

// patternFetch is the deterministic read-only backend: byte k of
// target t's region is a fixed function of (t, k), so any correct
// execution — cached or not, concurrent or serial — reads identical
// bytes.
func patternFetch(targets int) core.FetchFunc {
	return func(target, disp int, dst []byte) error {
		for i := range dst {
			off := disp + i
			dst[i] = byte(target*131 + off*31 + (off >> 8))
		}
		return nil
	}
}

// fnvMix folds buf into an FNV-1a style running checksum.
func fnvMix(h uint64, buf []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func hitRate(s core.Stats) float64 {
	if s.Gets == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Gets)
}
