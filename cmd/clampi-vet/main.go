// Command clampi-vet runs the project's invariant analyzers over Go
// packages — the compile-time counterpart of foMPI's runtime assertion
// modes (DESIGN.md §9):
//
//	epochcheck    RMA results are read only after the epoch closes
//	simclock      latency accounting flows through internal/simtime
//	sentinelerr   sentinel errors are matched with errors.Is / wrapped with %w
//	atomicfield   // clampi:atomic fields use sync/atomic only
//	observerlock  core.Observer is never notified under a mutex
//	seqlockcheck  // clampi:seqlock fields stay inside write sections
//	lockorder     the DESIGN.md §12/§13 lock hierarchy holds across calls
//	wireproto     the wire op/error tables stay in lockstep (DESIGN.md §13)
//
// Usage:
//
//	go run ./cmd/clampi-vet [-only name,name] [-list] [-json] [packages]
//
// Packages default to ./... . With -json each diagnostic is one JSON
// object per line ({"analyzer","position","message"}) for CI to render
// as annotations. Exit status: 0 clean, 1 diagnostics found, 2 usage or
// load failure — identical in both output modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/suite"
)

// jsonDiag is the -json line format: stable field names for CI tooling.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// printDiags renders the diagnostics: the human "pos: analyzer: msg"
// lines by default, or one JSON object per line with -json. The output
// mode never changes what is reported, only how.
func printDiags(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic, jsonOut bool) {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if jsonOut {
			_ = enc.Encode(jsonDiag{
				Analyzer: d.Analyzer,
				Position: fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
			continue
		}
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("clampi-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic line")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: clampi-vet [-only name,name] [-list] [-json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "clampi-vet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clampi-vet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clampi-vet:", err)
		return 2
	}
	printDiags(os.Stdout, loader.Fset(), diags, *jsonOut)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "clampi-vet: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}
