// Command clampi-vet runs the project's invariant analyzers over Go
// packages — the compile-time counterpart of foMPI's runtime assertion
// modes (DESIGN.md §9):
//
//	epochcheck    RMA results are read only after the epoch closes
//	simclock      latency accounting flows through internal/simtime
//	sentinelerr   sentinel errors are matched with errors.Is / wrapped with %w
//	atomicfield   // clampi:atomic fields use sync/atomic only
//	observerlock  core.Observer is never notified under a mutex
//	seqlockcheck  // clampi:seqlock fields stay inside write sections
//
// Usage:
//
//	go run ./cmd/clampi-vet [-only name,name] [-list] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 diagnostics
// found, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clampi/internal/analysis"
	"clampi/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("clampi-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: clampi-vet [-only name,name] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "clampi-vet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clampi-vet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clampi-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", loader.Fset().Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "clampi-vet: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}
