package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"clampi/internal/analysis"
	"clampi/internal/analysis/suite"
)

// registeredNames is the contract the CI registry guard also asserts:
// the suite names exactly these eight analyzers, in reporting order.
var registeredNames = []string{
	"epochcheck", "simclock", "sentinelerr", "atomicfield",
	"observerlock", "seqlockcheck", "lockorder", "wireproto",
}

// TestSuiteRegistration guards against silent deregistration: All()
// must name exactly the eight analyzers -list advertises.
func TestSuiteRegistration(t *testing.T) {
	all := suite.All()
	if len(all) != len(registeredNames) {
		t.Fatalf("suite.All() has %d analyzers, want %d", len(all), len(registeredNames))
	}
	for i, a := range all {
		if a.Name != registeredNames[i] {
			t.Errorf("suite.All()[%d] = %s, want %s", i, a.Name, registeredNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// fakeDiags builds two diagnostics at known positions for the printers.
func fakeDiags() (*token.FileSet, []analysis.Diagnostic) {
	fset := token.NewFileSet()
	f := fset.AddFile("x.go", -1, 100)
	f.AddLine(10)
	return fset, []analysis.Diagnostic{
		{Pos: f.Pos(5), Analyzer: "lockorder", Message: `second fill mutex "a"`},
		{Pos: f.Pos(15), Analyzer: "wireproto", Message: "op OpX has no opNames entry"},
	}
}

// TestPrintDiagsHuman pins the default "pos: analyzer: message" lines.
func TestPrintDiagsHuman(t *testing.T) {
	fset, diags := fakeDiags()
	var buf bytes.Buffer
	printDiags(&buf, fset, diags, false)
	want := "x.go:1:6: lockorder: second fill mutex \"a\"\nx.go:2:6: wireproto: op OpX has no opNames entry\n"
	if buf.String() != want {
		t.Errorf("human output:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestPrintDiagsJSON asserts the -json mode: one JSON object per line
// with the stable analyzer/position/message keys, quoting included.
func TestPrintDiagsJSON(t *testing.T) {
	fset, diags := fakeDiags()
	var buf bytes.Buffer
	printDiags(&buf, fset, diags, true)

	var got []jsonDiag
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if strings.ContainsAny(line, "\n") {
			t.Errorf("diagnostic spans lines: %q", line)
		}
		got = append(got, d)
	}
	if len(got) != len(diags) {
		t.Fatalf("got %d JSON lines, want %d", len(got), len(diags))
	}
	for i, d := range diags {
		if got[i].Analyzer != d.Analyzer || got[i].Message != d.Message {
			t.Errorf("line %d = %+v, want analyzer %s message %q", i, got[i], d.Analyzer, d.Message)
		}
		if got[i].Position != fset.Position(d.Pos).String() {
			t.Errorf("line %d position = %s, want %s", i, got[i].Position, fset.Position(d.Pos))
		}
	}
}
