// Command clampi-ext runs the experiments that go beyond the paper's
// figures: the ablations of DESIGN.md §6 and the extension workloads
// (pull-BFS, persistent-window Barnes-Hut).
//
// Usage:
//
//	clampi-ext [-exp all|samplesize|allocpolicy|cuckoo|bfs|persistent] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"

	"clampi/internal/experiments"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, samplesize, allocpolicy, cuckoo, bfs or persistent")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetExecMode(m)
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	emit := func(tbl *lsb.Table) {
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl)
		}
	}
	run := func(name string, f func() (*lsb.Table, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		tbl, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		emit(tbl)
	}

	run("samplesize", func() (*lsb.Table, error) {
		_, tbl, err := experiments.AblationSampleSize([]int{1, 4, 16, 64, 256}, 256, 4096)
		return tbl, err
	})
	run("allocpolicy", func() (*lsb.Table, error) {
		_, tbl, err := experiments.AblationAllocPolicy(256, 8192)
		return tbl, err
	})
	run("cuckoo", func() (*lsb.Table, error) {
		_, tbl, err := experiments.AblationCuckooWalk([]int{4, 16, 64, 256, 1024}, 4096, 5)
		return tbl, err
	})
	run("bfs", func() (*lsb.Table, error) {
		_, tbl, err := experiments.ExtensionBFS(11, 8, 4, 0)
		return tbl, err
	})
	run("persistent", func() (*lsb.Table, error) {
		_, tbl, err := experiments.ExtensionPersistentWindow(400, 2, 5)
		return tbl, err
	})

	if err := experiments.WriteObservability(*metricsOut, *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}
}
