// Command clampi-micro regenerates the micro-benchmark figures of the
// paper (§IV-A): access-type costs (Fig. 7), communication overlap
// (Fig. 8), adaptive parameter selection (Fig. 9), external fragmentation
// (Fig. 10) and victim selection (Fig. 11).
//
// Usage:
//
//	clampi-micro [-fig all|7|8|9|10|11] [-paper] [-n 512] [-z 8192]
//
// -paper selects the paper's full parameters (N=1K; Z=20K for Figs 7-9,
// Z=100K for Figs 10-11); the defaults are scaled for quick runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"clampi/internal/experiments"
	"clampi/internal/mpi"
	"clampi/internal/rma"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 7, 8, 9, 10 or 11")
	paper := flag.Bool("paper", false, "use the paper's full-scale parameters")
	n := flag.Int("n", 512, "distinct gets N")
	z := flag.Int("z", 8192, "sequence length Z")
	reps := flag.Int("reps", 50, "repetitions per Fig 7 access-type sample")
	mode := flag.String("mode", "fidelity", "execution mode: fidelity (serialized, calibration-grade timing) or throughput (concurrent ranks)")
	jsonOut := flag.Bool("json", false, "additionally run the headline micro benchmark and write BENCH_micro.json")
	metricsOut := flag.String("metrics", "", "write merged cache metrics to this file (.json selects JSON, anything else Prometheus text format)")
	traceOut := flag.String("trace", "", "write the cache-event trace to this file as JSON lines")
	flag.Parse()

	m, err := mpi.ParseExecMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetExecMode(m)
	if *metricsOut != "" || *traceOut != "" {
		experiments.EnableObservability(0)
	}

	if *paper {
		*n, *z = 1000, 20000
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
	}

	run("7", func() error {
		sizes := []int{256, 4096, 16384, 65536}
		_, tbl, err := experiments.Fig7AccessCosts(sizes, *reps)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("8", func() error {
		sizes := []int{512, 4096, 16384, 65536}
		_, tbl, err := experiments.Fig8Overlap(sizes)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("9", func() error {
		sizes := []int{*n / 4, *n / 2, *n, 2 * *n, 4 * *n}
		_, tbl, err := experiments.Fig9Adaptive(sizes, *n, *z)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("10", func() error {
		zz := *z
		if *paper {
			zz = 100000
		}
		_, tbl, err := experiments.Fig10Fragmentation(*n, zz, *n*3/2, 2<<20, 25)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})
	run("11", func() error {
		zz := *z
		if *paper {
			zz = 100000
		}
		sizes := []int{*n, 2 * *n, 4 * *n, 8 * *n, 16 * *n}
		_, tbl, err := experiments.Fig11VictimSelection(sizes, *n, zz, 2<<20)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		return nil
	})

	if *jsonOut {
		res, err := experiments.MicroBench(*n, *z)
		if err != nil {
			log.Fatalf("micro bench: %v", err)
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("micro bench: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile("BENCH_micro.json", buf, 0o644); err != nil {
			log.Fatalf("micro bench: %v", err)
		}
		fmt.Printf("BENCH_micro.json: %d ops, hit rate %.3f, %.1f virtual ns/op, %.0f wall ns/op, %.2f allocs/op, coalesce ratio %.1f\n",
			res.Ops, res.HitRate, res.VirtualNsPerOp, res.WallNsPerOp, res.AllocsPerOp, res.BatchCoalesceRatio)
		for _, class := range rma.DistanceClassNames {
			if d, ok := res.ByDistance[class]; ok {
				fmt.Printf("  by_distance %-12s %3d gets  %3d hits  %3d misses  %7.1f virtual ns/op\n",
					class, d.Gets, d.Hits, d.Misses, d.VirtualNsPerOp)
			}
		}
	}

	if err := experiments.WriteObservability(*metricsOut, *traceOut); err != nil {
		log.Fatalf("observability: %v", err)
	}
}
