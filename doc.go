// Package clampi is a transparent caching layer for MPI-3 RMA,
// reproducing and extending "Transparent Caching for RMA Systems"
// (Di Girolamo, Vella, Hoefler — IPDPS 2017).
//
// CLaMPI caches the payloads of remote get operations in local memory so
// that irregular applications with temporal reuse (graph analytics,
// N-body simulations) replace microsecond-scale network accesses with
// sub-microsecond local copies. The layer is "weak": inserting into the
// cache may fail, bounding the overhead added to any miss to a constant,
// and consistency comes for free from the MPI-3 epoch model — cached
// data is only handed out in the epochs where MPI itself guarantees it
// cannot have changed.
//
// The surface is read-write. Put writes through the cache (patching an
// exactly-covering cached entry in place so the writer's own reads keep
// hitting), WithWriteBack stages dense spans and flushes them as
// coalesced runs at epoch close, and PutNotify — the notifiable-RMA
// extension — additionally enqueues a notification naming the written
// span at every rank subscribed with WithNotify. Subscribed caches
// replace blanket epoch invalidation with targeted coherence: only the
// spans remote writers touched are invalidated (or patched from the
// carried bytes), so regular producer/consumer workloads like the
// bundled 2-D Jacobi halo exchange (internal/stencil, cmd/clampi-stencil
// — the regular-access counterpoint to the LCC/BFS/N-body suite) keep
// their unchanged halos cached across epochs.
//
// # Runtime
//
// Because no MPI implementation is available to a pure-Go reproduction,
// the package ships its own in-process MPI-3 RMA runtime: ranks are
// goroutines, windows are byte regions, and network latency is modelled
// (calibrated to the Cray Aries numbers of the paper). Applications are
// written exactly as SPMD MPI programs:
//
//	clampi.Run(16, clampi.RunConfig{}, func(r *clampi.Rank) error {
//		win, local := r.WinAllocate(1<<20, nil)
//		defer win.Free()
//		cw, err := clampi.Wrap(win, clampi.WithMode(clampi.AlwaysCache))
//		if err != nil {
//			return err
//		}
//		if err := cw.LockAll(); err != nil {
//			return err
//		}
//		buf := make([]byte, 4096)
//		_ = cw.Get(buf, clampi.Bytes(4096), 1, (r.ID()+1)%r.Size(), 0)
//		_ = cw.FlushAll() // buf valid from here; repeat gets now hit
//		_ = cw.UnlockAll()
//		_ = local
//		return nil
//	})
//
// # Operational modes
//
// Transparent mode needs no application changes and invalidates the
// cache at every epoch closure. AlwaysCache suits windows whose memory
// is read-only for their whole lifespan (e.g. a distributed graph).
// The paper's user-defined mode is AlwaysCache plus explicit
// (*Window).Invalidate calls at the end of each read-only phase. On
// notify-enabled windows (WithNotify), transparent mode's blanket
// invalidation narrows to the notified spans — see DESIGN.md §16.
package clampi
