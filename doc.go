// Package clampi is a transparent caching layer for MPI-3 RMA get
// operations, reproducing "Transparent Caching for RMA Systems"
// (Di Girolamo, Vella, Hoefler — IPDPS 2017).
//
// CLaMPI caches the payloads of remote get operations in local memory so
// that irregular applications with temporal reuse (graph analytics,
// N-body simulations) replace microsecond-scale network accesses with
// sub-microsecond local copies. The layer is "weak": inserting into the
// cache may fail, bounding the overhead added to any miss to a constant,
// and consistency comes for free from the MPI-3 epoch model — cached
// data is only handed out in the epochs where MPI itself guarantees it
// cannot have changed.
//
// # Runtime
//
// Because no MPI implementation is available to a pure-Go reproduction,
// the package ships its own in-process MPI-3 RMA runtime: ranks are
// goroutines, windows are byte regions, and network latency is modelled
// (calibrated to the Cray Aries numbers of the paper). Applications are
// written exactly as SPMD MPI programs:
//
//	clampi.Run(16, clampi.RunConfig{}, func(r *clampi.Rank) error {
//		win, local := r.WinAllocate(1<<20, nil)
//		defer win.Free()
//		cw, err := clampi.Wrap(win, clampi.WithMode(clampi.AlwaysCache))
//		if err != nil {
//			return err
//		}
//		if err := cw.LockAll(); err != nil {
//			return err
//		}
//		buf := make([]byte, 4096)
//		_ = cw.Get(buf, clampi.Bytes(4096), 1, (r.ID()+1)%r.Size(), 0)
//		_ = cw.FlushAll() // buf valid from here; repeat gets now hit
//		_ = cw.UnlockAll()
//		_ = local
//		return nil
//	})
//
// # Operational modes
//
// Transparent mode needs no application changes and invalidates the
// cache at every epoch closure. AlwaysCache suits windows whose memory
// is read-only for their whole lifespan (e.g. a distributed graph).
// The paper's user-defined mode is AlwaysCache plus explicit
// (*Window).Invalidate calls at the end of each read-only phase.
package clampi
