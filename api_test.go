package clampi

import (
	"testing"
)

func TestGetUncachedBypassesCache(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		region := make([]byte, 256)
		for i := range region {
			region[i] = byte(i)
		}
		w, err := Create(r, region, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 0 {
			if err := w.LockAll(); err != nil {
				return err
			}
			buf := make([]byte, 64)
			if err := w.GetUncached(buf, Byte, 64, 1, 0); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(i) {
					t.Errorf("byte %d = %d", i, buf[i])
					break
				}
			}
			if s := w.Stats(); s.Gets != 0 {
				t.Errorf("uncached get reached the cache: %d gets", s.Gets)
			}
			if w.CachedEntries() != 0 {
				t.Errorf("uncached get populated the cache")
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutInvalidatesThroughPublicAPI(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 512, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 1 {
			for i := range local {
				local[i] = byte(i)
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			if err := w.LockAll(); err != nil {
				return err
			}
			buf := make([]byte, 64)
			if err := w.GetBytes(buf, 1, 0); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			if w.CachedEntries() != 1 {
				t.Errorf("CachedEntries = %d", w.CachedEntries())
			}
			// Overlapping put drops the entry.
			if err := w.Put([]byte{9, 9}, Byte, 2, 1, 32); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			if w.CachedEntries() != 0 {
				t.Errorf("entry survived overlapping Put")
			}
			// Re-get sees the new bytes.
			if err := w.GetBytes(buf, 1, 0); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			if buf[32] != 9 || buf[33] != 9 || buf[0] != 0 {
				t.Errorf("refetched data wrong: %v", buf[30:36])
			}
			// Explicit range invalidation of a non-overlapping range
			// is a no-op.
			if n := w.InvalidateRange(1, 400, 16); n != 0 {
				t.Errorf("InvalidateRange dropped %d", n)
			}
			if n := w.InvalidateRange(1, 0, 512); n != 1 {
				t.Errorf("InvalidateRange dropped %d, want 1", n)
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowGetWithDerivedDatatype(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		region := make([]byte, 256)
		for i := range region {
			region[i] = byte(i)
		}
		w, err := Create(r, region, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 0 {
			if err := w.LockAll(); err != nil {
				return err
			}
			vt := Vector(4, 4, 8, Byte) // 16 payload bytes, strided
			buf := make([]byte, vt.Size())
			if err := w.Get(buf, vt, 1, 1, 16); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			k := 0
			for blk := 0; blk < 4; blk++ {
				for i := 0; i < 4; i++ {
					if want := byte(16 + blk*8 + i); buf[k] != want {
						t.Errorf("packed byte %d = %d, want %d", k, buf[k], want)
					}
					k++
				}
			}
			// Repeat hits.
			if err := w.Get(buf, vt, 1, 1, 16); err != nil {
				return err
			}
			if a := w.LastAccess(); a.Type != AccessHit {
				t.Errorf("repeat = %v", a.Type)
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowFence(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 64, nil, WithMode(Transparent))
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.Fence(); err != nil {
			return err
		}
		if r.ID() == 0 {
			if err := w.Put([]byte{7}, Byte, 1, 1, 3); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if r.ID() == 1 && local[3] != 7 {
			t.Errorf("fence did not complete the put: %d", local[3])
		}
		buf := make([]byte, 1)
		if err := w.Get(buf, Byte, 1, 1-r.ID(), 3); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveOptionThroughPublicAPI(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, _, err := Allocate(r, 1<<16, nil,
			WithMode(AlwaysCache), WithAdaptive(), WithIndexSlots(64),
			WithParams(Params{Mode: AlwaysCache, Adaptive: true, IndexSlots: 64, TuneInterval: 64}))
		if err != nil {
			return err
		}
		defer w.Free()
		if r.ID() == 0 {
			if err := w.LockAll(); err != nil {
				return err
			}
			buf := make([]byte, 64)
			for i := 0; i < 600; i++ {
				if err := w.GetBytes(buf, 1, (i%512)*64); err != nil {
					return err
				}
				if err := w.FlushAll(); err != nil {
					return err
				}
			}
			if w.IndexSlots() <= 64 {
				t.Errorf("adaptive index did not grow through public API: %d", w.IndexSlots())
			}
			if w.Occupancy() <= 0 {
				t.Errorf("Occupancy = %v", w.Occupancy())
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsRateHelpers(t *testing.T) {
	s := Stats{Gets: 4, Hits: 2, Direct: 1, Failing: 1}
	if s.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
	if s.Rate(AccessFailing) != 0.25 {
		t.Fatalf("Rate(failing) = %v", s.Rate(AccessFailing))
	}
	if AccessHit.String() != "hitting" || Transparent.String() != "transparent" ||
		SchemeFull.String() != "full" {
		t.Fatalf("string re-exports broken")
	}
}

func TestPublicPSCWAccumulateAndExclusiveLock(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 64, nil, WithMode(AlwaysCache))
		if err != nil {
			return err
		}
		defer w.Free()

		// PSCW epoch: rank 1 exposes, rank 0 accesses.
		if r.ID() == 0 {
			if err := w.Start([]int{1}); err != nil {
				return err
			}
			one := make([]byte, 8)
			one[0] = 2 // int64(2) little-endian
			if err := w.Accumulate(one, Int64, 1, 1, 0, OpSum); err != nil {
				return err
			}
			if err := w.Accumulate(one, Int64, 1, 1, 0, OpSum); err != nil {
				return err
			}
			if err := w.Complete(); err != nil {
				return err
			}
		} else {
			if err := w.Post([]int{0}); err != nil {
				return err
			}
			if err := w.Wait(); err != nil {
				return err
			}
			if local[0] != 4 {
				t.Errorf("accumulated value = %d, want 4", local[0])
			}
		}
		r.Barrier()

		// Exclusive lock epoch through the public API.
		if err := w.LockWithType(LockExclusive, 1-r.ID()); err != nil {
			return err
		}
		buf := make([]byte, 8)
		if err := w.GetBytes(buf, 1-r.ID(), 0); err != nil {
			return err
		}
		if err := w.Unlock(1 - r.ID()); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchStatsAccounting pins down the counter contract of
// Window.Prefetch: each call increments Prefetches and its payload is
// charged to BytesFromNetwork; the warmed Get serves from cache, adding
// to BytesFromCache only.
func TestPrefetchStatsAccounting(t *testing.T) {
	err := Run(2, RunConfig{}, func(r *Rank) error {
		w, local, err := Allocate(r, 1024, nil, WithMode(AlwaysCache), WithSeed(1))
		if err != nil {
			return err
		}
		defer w.Free()
		for i := range local {
			local[i] = byte(r.ID())
		}
		r.Barrier()

		target := (r.ID() + 1) % r.Size()
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.Prefetch(target, 0, 256); err != nil {
			return err
		}
		if err := w.Prefetch(target, 256, 128); err != nil {
			return err
		}
		if err := w.Prefetch(target, 0, 0); err != nil { // no-op, not counted
			return err
		}
		if err := w.FlushAll(); err != nil { // epoch closure: entries become CACHED
			return err
		}
		before := w.Stats()
		if before.Prefetches != 2 {
			t.Errorf("Prefetches = %d, want 2", before.Prefetches)
		}
		if before.BytesFromNetwork != 256+128 {
			t.Errorf("BytesFromNetwork = %d, want %d", before.BytesFromNetwork, 256+128)
		}
		if before.BytesFromCache != 0 {
			t.Errorf("BytesFromCache = %d before any user Get", before.BytesFromCache)
		}

		// The warmed range now serves locally: no new network bytes.
		buf := make([]byte, 256)
		if err := w.GetBytes(buf, target, 0); err != nil {
			return err
		}
		if a := w.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("post-prefetch access = %+v, want unissued hit", a)
		}
		delta := w.Stats().Sub(before)
		if delta.Gets != 1 || delta.Hits != 1 || delta.Prefetches != 0 {
			t.Errorf("delta = %+v, want exactly one hitting get", delta)
		}
		if delta.BytesFromNetwork != 0 || delta.BytesFromCache != 256 {
			t.Errorf("delta bytes network=%d cache=%d, want 0/256",
				delta.BytesFromNetwork, delta.BytesFromCache)
		}
		for _, b := range buf {
			if b != byte(target) {
				t.Errorf("prefetched data corrupt: got %d want %d", b, target)
				break
			}
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}
